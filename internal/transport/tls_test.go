package transport

import (
	"bytes"
	"crypto/tls"
	"crypto/x509"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/wire"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// testSuite returns one deterministic key universe shared by every
// node of a test cluster (replicas 0..2, clients from 1000). Building
// the universe costs ~1s (1027 keypairs plus pairwise MAC keys), so
// all tests share one instance; the suite is safe for concurrent
// readers.
func testSuite(t *testing.T) *crypto.Ed25519Suite {
	t.Helper()
	suiteOnce.Do(func() { sharedSuite = crypto.NewEd25519Suite(3+1024, 7) })
	return sharedSuite
}

var (
	suiteOnce   sync.Once
	sharedSuite *crypto.Ed25519Suite
)

func autoTLS(t *testing.T, suite *crypto.Ed25519Suite, id smr.NodeID) *TLS {
	t.Helper()
	sec, err := AutoTLS(suite, id)
	if err != nil {
		t.Fatal(err)
	}
	return sec
}

// ---------------------------------------------------------------------------
// Frame kinds
// ---------------------------------------------------------------------------

func TestFrameKindRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameKind(&buf, FramePing, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte("msg")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrameKind(&buf, nil)
	if err != nil || kind != FramePing || string(payload) != "12345678" {
		t.Fatalf("ping frame: kind=%d payload=%q err=%v", kind, payload, err)
	}
	kind, payload, err = ReadFrameKind(&buf, payload)
	if err != nil || kind != FrameMsg || string(payload) != "msg" {
		t.Fatalf("msg frame: kind=%d payload=%q err=%v", kind, payload, err)
	}
}

// A kind-0 frame must be bit-identical to the legacy length-prefixed
// format, so plaintext peers from before the kind bits interoperate.
func TestFrameMsgWireCompatible(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteFrame(&a, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b.Write([]byte{5, 0, 0, 0})
	b.WriteString("hello")
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("FrameMsg encoding diverged from legacy: %x vs %x", a.Bytes(), b.Bytes())
	}
}

// ---------------------------------------------------------------------------
// Mutual TLS
// ---------------------------------------------------------------------------

// newTLSPair mirrors newPair with mutual TLS from a shared suite.
func newTLSPair(t *testing.T, opts ...Option) (a, b *Node, sa, sb *sinkNode) {
	t.Helper()
	suite := testSuite(t)
	sa, sb = &sinkNode{}, &sinkNode{}
	peers := map[smr.NodeID]string{}
	a, err := NewNode(0, sa, "127.0.0.1:0", peers, append(opts, WithTLS(autoTLS(t, suite, 0)))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewNode(1, sb, "127.0.0.1:0", peers, append(opts, WithTLS(autoTLS(t, suite, 1)))...)
	if err != nil {
		t.Fatal(err)
	}
	peers[0] = a.Addr()
	peers[1] = b.Addr()
	go a.Run()
	go b.Run()
	t.Cleanup(func() {
		a.Stop()
		b.Stop()
	})
	return a, b, sa, sb
}

func TestTLSSendReceive(t *testing.T) {
	a, b, sa, sb := newTLSPair(t)
	a.Send(1, testMsg(42))
	b.Send(0, testMsg(43))
	waitFor(t, func() bool { return sb.count() == 1 && sa.count() == 1 }, "TLS cross traffic")
	sb.mu.Lock()
	got := sb.recvd[0]
	sb.mu.Unlock()
	m, ok := got.Msg.(*xpaxos.MsgCommit)
	if got.From != 0 || !ok || m.Order.SN != 42 {
		t.Fatalf("message did not round-trip over TLS: %#v", got)
	}
}

// TestTLSRejectsPlaintextDialer: a peer that skips the handshake must
// not get frames into the node.
func TestTLSRejectsPlaintextDialer(t *testing.T) {
	suite := testSuite(t)
	sink := &sinkNode{}
	n, err := NewNode(0, sink, "127.0.0.1:0", nil, WithTLS(autoTLS(t, suite, 0)))
	if err != nil {
		t.Fatal(err)
	}
	go n.Run()
	defer n.Stop()

	c, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := wire.New(64)
	buf.I64(1)
	if err := xpaxos.AppendMessage(buf, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	WriteFrame(c, buf.Done()) // raw plaintext frame into a TLS listener
	time.Sleep(100 * time.Millisecond)
	if sink.count() != 0 {
		t.Fatalf("plaintext frame crossed a TLS listener: %d messages", sink.count())
	}
}

// TestTLSRejectsSpoofedSender: a correctly authenticated peer (cert
// for node 1) claiming another sender id in the frame header must be
// disconnected without delivery — the channel identity binds the
// protocol identity.
func TestTLSRejectsSpoofedSender(t *testing.T) {
	suite := testSuite(t)
	sink := &sinkNode{}
	n, err := NewNode(0, sink, "127.0.0.1:0", nil, WithTLS(autoTLS(t, suite, 0)))
	if err != nil {
		t.Fatal(err)
	}
	go n.Run()
	defer n.Stop()

	dial := func(asID smr.NodeID) *tls.Conn {
		t.Helper()
		sec := autoTLS(t, suite, asID)
		c, err := tls.Dial("tcp", n.Addr(), sec.clientConfig(0))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Honest: cert 1, claimed sender 1 — delivered.
	honest := dial(1)
	defer honest.Close()
	buf := wire.New(64)
	buf.I64(1)
	if err := xpaxos.AppendMessage(buf, testMsg(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(honest, buf.Done()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sink.count() == 1 }, "honest TLS frame")

	// Spoofed: cert 1, claimed sender 2 — dropped, conn closed.
	spoof := dial(1)
	defer spoof.Close()
	buf.Reset()
	buf.I64(2)
	if err := xpaxos.AppendMessage(buf, testMsg(6)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(spoof, buf.Done()); err != nil {
		t.Fatal(err)
	}
	// The node must hang up on the spoofer.
	spoof.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := spoof.Read(make([]byte, 1)); err == nil {
		t.Fatal("spoofing connection not closed")
	}
	if sink.count() != 1 {
		t.Fatalf("spoofed frame delivered: %d messages", sink.count())
	}
}

// TestTLSWrongClusterRejected: certificates from a different seed (a
// different cluster CA) must not authenticate.
func TestTLSWrongClusterRejected(t *testing.T) {
	suiteA := crypto.NewEd25519Suite(3+1024, 7)
	suiteB := crypto.NewEd25519Suite(3+1024, 8)
	sink := &sinkNode{}
	n, err := NewNode(0, sink, "127.0.0.1:0", nil, WithTLS(autoTLS(t, suiteA, 0)))
	if err != nil {
		t.Fatal(err)
	}
	go n.Run()
	defer n.Stop()

	sec := autoTLS(t, suiteB, 1)
	c, err := tls.Dial("tcp", n.Addr(), sec.clientConfig(0))
	if err == nil {
		// The handshake may only fail at first read/write depending on
		// which side aborts; either way no frame may be delivered.
		buf := wire.New(64)
		buf.I64(1)
		xpaxos.AppendMessage(buf, testMsg(9))
		WriteFrame(c, buf.Done())
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("foreign-cluster connection stayed open")
		}
		c.Close()
	}
	time.Sleep(50 * time.Millisecond)
	if sink.count() != 0 {
		t.Fatalf("foreign-cluster frame delivered: %d messages", sink.count())
	}
}

// TestPeerIDFromCert pins the identity-SAN parsing rules: exactly one
// non-negative xft-node-<id> name. A negative id would collide with
// the read loop's plaintext sentinel (silently disabling the sender
// check); a multi-identity cert would speak for several nodes.
func TestPeerIDFromCert(t *testing.T) {
	cases := []struct {
		names []string
		want  smr.NodeID
		ok    bool
	}{
		{[]string{"xft-node-3"}, 3, true},
		{[]string{"example.com", "xft-node-1000"}, 1000, true},
		{[]string{"xft-node-0"}, 0, true},
		{[]string{"xft-node--1"}, 0, false},
		{[]string{"xft-node-1", "xft-node-2"}, 0, false},
		{[]string{"xft-node-"}, 0, false},
		{[]string{"xft-node-x"}, 0, false},
		{[]string{"example.com"}, 0, false},
		{nil, 0, false},
	}
	for _, c := range cases {
		id, ok := peerIDFromCert(&x509.Certificate{DNSNames: c.names})
		if ok != c.ok || (ok && id != c.want) {
			t.Errorf("peerIDFromCert(%v) = (%d, %v), want (%d, %v)", c.names, id, ok, c.want, c.ok)
		}
	}
}

// TestLoadTLSFiles round-trips WriteCertFiles -> LoadTLS and runs real
// traffic over the file-provisioned material.
func TestLoadTLSFiles(t *testing.T) {
	suite := testSuite(t)
	dir := t.TempDir()
	if err := WriteCertFiles(suite, []smr.NodeID{0, 1}, dir); err != nil {
		t.Fatal(err)
	}
	load := func(id int) *TLS {
		sec, err := LoadTLS(
			filepath.Join(dir, nodeCertName(id)),
			filepath.Join(dir, nodeKeyName(id)),
			filepath.Join(dir, "ca.pem"))
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}
	sa, sb := &sinkNode{}, &sinkNode{}
	peers := map[smr.NodeID]string{}
	a, err := NewNode(0, sa, "127.0.0.1:0", peers, WithTLS(load(0)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(1, sb, "127.0.0.1:0", peers, WithTLS(load(1)))
	if err != nil {
		t.Fatal(err)
	}
	peers[0], peers[1] = a.Addr(), b.Addr()
	go a.Run()
	go b.Run()
	defer a.Stop()
	defer b.Stop()
	a.Send(1, testMsg(11))
	waitFor(t, func() bool { return sb.count() == 1 }, "file-provisioned TLS traffic")
}

func nodeCertName(id int) string { return "node-" + itoa(id) + ".pem" }
func nodeKeyName(id int) string  { return "node-" + itoa(id) + "-key.pem" }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// ---------------------------------------------------------------------------
// Keepalive health probing
// ---------------------------------------------------------------------------

// healthSink records delivered health events alongside messages.
type healthSink struct {
	sinkNode
	downs chan smr.PeerDown
	ups   chan smr.PeerUp
}

func newHealthSink() *healthSink {
	return &healthSink{
		downs: make(chan smr.PeerDown, 16),
		ups:   make(chan smr.PeerUp, 16),
	}
}

func (h *healthSink) Step(ev smr.Event) {
	switch e := ev.(type) {
	case smr.PeerDown:
		h.downs <- e
	case smr.PeerUp:
		h.ups <- e
	default:
		h.sinkNode.Step(ev)
	}
}

// TestKeepaliveDetectsDeadPeer: with probing enabled, a stopped peer
// must surface as a PeerDown event within the probe timeout, and its
// replacement (same address) as a PeerUp.
func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	hs := newHealthSink()
	sb := &sinkNode{}
	peers := map[smr.NodeID]string{}
	a, err := NewNode(0, hs, "127.0.0.1:0", peers,
		WithKeepalive(20*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(1, sb, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	peers[0], peers[1] = a.Addr(), addrB
	go a.Run()
	go b.Run()
	t.Cleanup(a.Stop)
	t.Cleanup(b.Stop)

	// Probing must confirm liveness without any protocol traffic: the
	// health record's LastSeen advances only on pongs, so seeing it
	// past several probe intervals proves a round trip happened.
	waitFor(t, func() bool {
		st := a.Stats().Peers[1]
		return st.Up && st.LastSeen > 300*time.Millisecond
	}, "initial liveness confirmation")

	b.Stop()
	select {
	case d := <-hs.downs:
		if d.Peer != 1 {
			t.Fatalf("PeerDown for %d, want 1", d.Peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerDown after stopping the peer")
	}
	if st := a.Stats().Peers[1]; st.Up {
		t.Error("stats still report peer 1 up after PeerDown")
	}

	// Resurrect the peer on the same address: probing must report it
	// back up.
	b2, err := NewNode(1, &sinkNode{}, addrB, peers)
	if err != nil {
		t.Fatal(err)
	}
	go b2.Run()
	t.Cleanup(b2.Stop)
	select {
	case u := <-hs.ups:
		if u.Peer != 1 {
			t.Fatalf("PeerUp for %d, want 1", u.Peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no PeerUp after peer came back")
	}
}

// TestKeepaliveOverTLS: probes must flow through secured channels too
// (the pong rides the TLS stream the ping arrived on).
func TestKeepaliveOverTLS(t *testing.T) {
	a, _, _, _ := newTLSPair(t, WithKeepalive(20*time.Millisecond, 100*time.Millisecond))
	waitFor(t, func() bool {
		st := a.Stats().Peers[1]
		return st.Up && st.LastSeen > 300*time.Millisecond
	}, "TLS keepalive round trip")
}

// ---------------------------------------------------------------------------
// End-to-end: a TLS cluster commits (acceptance criterion)
// ---------------------------------------------------------------------------

// TestTLSClusterCommits runs a full 3-replica XPaxos cluster plus one
// client, all over mutual TLS with keepalive probing, and commits
// operations end to end.
func TestTLSClusterCommits(t *testing.T) {
	const (
		n       = 3
		tf      = 1
		numOps  = 5
		clientD = smr.ClientIDBase
	)
	suite := testSuite(t)
	peers := map[smr.NodeID]string{}
	var nodes []*Node

	for i := 0; i < n; i++ {
		id := smr.NodeID(i)
		cfg := xpaxos.Config{
			N: n, T: tf,
			Suite:          suite,
			Delta:          200 * time.Millisecond,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
		}
		rep := xpaxos.NewReplica(id, cfg, kv.NewStore())
		node, err := NewNode(id, rep, "127.0.0.1:0", peers,
			WithTLS(autoTLS(t, suite, id)),
			WithKeepalive(50*time.Millisecond, 250*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = node.Addr()
		nodes = append(nodes, node)
	}

	committed := make(chan []byte, numOps)
	cl, err := xpaxos.NewClient(clientD, xpaxos.ClientConfig{
		N: n, T: tf, Suite: suite,
		RequestTimeout: 2 * time.Second,
		OnCommit:       func(op, rep []byte, lat time.Duration) { committed <- rep },
	})
	if err != nil {
		t.Fatal(err)
	}
	cnode, err := NewNode(clientD, cl, "127.0.0.1:0", peers, WithTLS(autoTLS(t, suite, clientD)))
	if err != nil {
		t.Fatal(err)
	}
	peers[clientD] = cnode.Addr()
	nodes = append(nodes, cnode)

	for _, nd := range nodes {
		go nd.Run()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})

	for i := 0; i < numOps; i++ {
		cnode.Submit(smr.Invoke{Op: kv.PutOp("k", []byte{byte(i)})})
		select {
		case <-committed:
		case <-time.After(10 * time.Second):
			t.Fatalf("op %d did not commit over the TLS cluster", i)
		}
	}
}

// TestKeepaliveDrivenSuspectTCP: the acceptance scenario on a live
// loopback cluster. The request timeout is set far beyond the test
// horizon, so only the keepalive-fed PeerDown can trigger the view
// change when the primary dies.
func TestKeepaliveDrivenSuspectTCP(t *testing.T) {
	const (
		n  = 3
		tf = 1
	)
	suite := testSuite(t)
	peers := map[smr.NodeID]string{}
	var nodes []*Node
	viewChanged := make(chan smr.View, 8)

	for i := 0; i < n; i++ {
		id := smr.NodeID(i)
		cfg := xpaxos.Config{
			N: n, T: tf,
			Suite:        suite,
			Delta:        100 * time.Millisecond,
			BatchTimeout: 2 * time.Millisecond,
			// Deliberately enormous: a view change before this expires
			// can only come from the health signal.
			RequestTimeout: 10 * time.Minute,
		}
		cfg.OnViewChange = func(v smr.View, at time.Duration) { viewChanged <- v }
		rep := xpaxos.NewReplica(id, cfg, kv.NewStore())
		node, err := NewNode(id, rep, "127.0.0.1:0", peers,
			WithKeepalive(25*time.Millisecond, 150*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = node.Addr()
		nodes = append(nodes, node)
	}
	for _, nd := range nodes {
		go nd.Run()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})

	// Let probing confirm liveness, then kill the view-0 primary.
	time.Sleep(200 * time.Millisecond)
	nodes[0].Stop()

	select {
	case v := <-viewChanged:
		if v == 0 {
			t.Fatalf("view change into view 0?")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("keepalive-fed health signal did not drive a view change")
	}
}
