package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 1000),
		make([]byte, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(want))
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("trailing read: got %v, want io.EOF", err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	first, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ReadFrame(&buf, first)
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "abc" {
		t.Fatalf("second frame = %q", second)
	}
	// The smaller second frame must have reused the first's storage.
	if cap(second) != cap(first) {
		t.Errorf("buffer not reused: cap %d vs %d", cap(second), cap(first))
	}
}

func TestFrameShortReads(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello, world")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Truncate at every prefix length: a cut header reads as EOF (or
	// ErrUnexpectedEOF past the first byte), a cut payload must always
	// be ErrUnexpectedEOF — never a short success.
	for cut := 0; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]), nil)
		switch {
		case cut == 0:
			if err != io.EOF {
				t.Errorf("cut=0: got %v, want io.EOF", err)
			}
		default:
			if err != io.ErrUnexpectedEOF {
				t.Errorf("cut=%d: got %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	}
}

func TestFrameOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write oversize: got %v", err)
	}
	// A hostile length prefix must be rejected before allocation.
	hostile := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hostile), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("read hostile prefix: got %v", err)
	}
}

// ---------------------------------------------------------------------------
// TCP node
// ---------------------------------------------------------------------------

// sinkNode records received messages.
type sinkNode struct {
	mu    sync.Mutex
	recvd []smr.Recv
}

func (s *sinkNode) Init(env smr.Env) {}
func (s *sinkNode) Step(ev smr.Event) {
	if r, ok := ev.(smr.Recv); ok {
		s.mu.Lock()
		s.recvd = append(s.recvd, r)
		s.mu.Unlock()
	}
}

func (s *sinkNode) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recvd)
}

// newPair starts two connected nodes and returns them with a cleanup.
func newPair(t *testing.T) (a, b *Node, sa, sb *sinkNode) {
	t.Helper()
	sa, sb = &sinkNode{}, &sinkNode{}
	peers := map[smr.NodeID]string{}
	a, err := NewNode(0, sa, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewNode(1, sb, "127.0.0.1:0", peers)
	if err != nil {
		t.Fatal(err)
	}
	peers[0] = a.Addr()
	peers[1] = b.Addr()
	go a.Run()
	go b.Run()
	t.Cleanup(func() {
		a.Stop()
		b.Stop()
	})
	return a, b, sa, sb
}

func testMsg(sn uint64) smr.Message {
	return &xpaxos.MsgCommit{Order: xpaxos.Order{Kind: xpaxos.KindCommit, SN: smr.SeqNum(sn), Sig: []byte("sig")}}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNodeSendReceive(t *testing.T) {
	a, _, sa, sb := newPair(t)
	a.Send(1, testMsg(7))
	waitFor(t, func() bool { return sb.count() == 1 }, "message at b")
	sb.mu.Lock()
	got := sb.recvd[0]
	sb.mu.Unlock()
	if got.From != 0 {
		t.Errorf("From = %d, want 0", got.From)
	}
	m, ok := got.Msg.(*xpaxos.MsgCommit)
	if !ok || m.Order.SN != 7 || string(m.Order.Sig) != "sig" {
		t.Errorf("message did not round-trip: %#v", got.Msg)
	}
	if sa.count() != 0 {
		t.Errorf("a received %d unexpected messages", sa.count())
	}
}

func TestNodeConcurrentSends(t *testing.T) {
	a, _, _, sb := newPair(t)
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Send(1, testMsg(uint64(g*per+i)))
			}
		}(g)
	}
	wg.Wait()
	// TCP is reliable and all sends share node a's single connection to
	// b: every frame must arrive intact, in some order.
	waitFor(t, func() bool { return sb.count() == goroutines*per }, "all concurrent sends")
	seen := make(map[smr.SeqNum]bool)
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for _, r := range sb.recvd {
		m, ok := r.Msg.(*xpaxos.MsgCommit)
		if !ok {
			t.Fatalf("unexpected message type %T", r.Msg)
		}
		if seen[m.Order.SN] {
			t.Fatalf("duplicate frame for sn %d", m.Order.SN)
		}
		seen[m.Order.SN] = true
	}
}

func TestNodeSendToUnknownPeerDrops(t *testing.T) {
	a, _, _, _ := newPair(t)
	a.Send(99, testMsg(1)) // no address: must not panic or block
}

func TestNodeTeardownWithInflight(t *testing.T) {
	a, b, _, sb := newPair(t)
	// Blast messages from a background goroutine while tearing both
	// nodes down; Stop must not deadlock or panic, and Run must return.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				a.Send(1, testMsg(uint64(i)))
			}
		}
	}()
	waitFor(t, func() bool { return sb.count() > 10 }, "traffic to flow")
	doneStop := make(chan struct{})
	go func() {
		b.Stop()
		a.Stop()
		close(doneStop)
	}()
	select {
	case <-doneStop:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked with in-flight messages")
	}
	close(stop)
	wg.Wait()
}

// TestStopReleasesGoroutines checks Serve/Stop goroutine hygiene: the
// accept loop, every inbound readLoop and every peer writer must exit
// on Stop, without waiting for the remote end to hang up.
func TestStopReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	a, b, sa, sb := newPair(t)
	// Traffic in both directions creates inbound and outbound
	// connections (and thus readLoop + writeLoop goroutines) on each.
	a.Send(1, testMsg(1))
	b.Send(0, testMsg(2))
	waitFor(t, func() bool { return sa.count() == 1 && sb.count() == 1 }, "cross traffic")
	a.Stop()
	b.Stop()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 },
		fmt.Sprintf("goroutines to return to ~%d (now %d)", before, runtime.NumGoroutine()))
}

// timerCancelNode cancels every timer right after it is delivered (a
// no-op by contract) — the regression here is that this used to leave a
// permanent tombstone per timer in the cancelled map.
type timerCancelNode struct {
	env   smr.Env
	fired chan smr.TimerID
}

func (tn *timerCancelNode) Init(env smr.Env) { tn.env = env }
func (tn *timerCancelNode) Step(ev smr.Event) {
	switch ev := ev.(type) {
	case smr.Start:
		// A cancelled-before-firing timer must leave no state behind.
		id := tn.env.SetTimer(time.Hour, "never")
		tn.env.CancelTimer(id)
		tn.env.SetTimer(time.Millisecond, "soon")
	case smr.TimerFired:
		tn.env.CancelTimer(ev.ID) // already delivered: must be a no-op
		select {
		case tn.fired <- ev.ID:
		default:
		}
	}
}

func TestCancelTimerLeavesNoTombstones(t *testing.T) {
	tn := &timerCancelNode{fired: make(chan smr.TimerID, 1)}
	n, err := NewNode(0, tn, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { n.Run(); close(done) }()
	select {
	case <-tn.fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	n.Stop()
	<-done // Run returned: timer maps are quiescent
	if pending, tombstones := n.timers.Sizes(); pending != 0 || tombstones != 0 {
		t.Errorf("timer maps leaked: pending=%d tombstones=%d", pending, tombstones)
	}
}

// TestSendDownPeerDoesNotBlock is the regression test for the old
// synchronous DialTimeout under Send: with an unreachable peer, a burst
// of sends must return immediately (the writer goroutine absorbs the
// dial), and overflow must be counted, not silent.
func TestSendDownPeerDoesNotBlock(t *testing.T) {
	// A listener that is closed right away yields an address that
	// refuses connections deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	downAddr := ln.Addr().String()
	ln.Close()

	sink := &sinkNode{}
	n, err := NewNode(0, sink, "127.0.0.1:0", map[smr.NodeID]string{1: downAddr},
		WithSendQueueCap(8), WithDialTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	go n.Run()
	defer n.Stop()

	const burst = 100
	start := time.Now()
	for i := 0; i < burst; i++ {
		n.Send(1, testMsg(uint64(i)))
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("Send burst to down peer took %v; event loop stalled", el)
	}
	st := n.Stats().Peers[1]
	if st.Queued > 8 {
		t.Errorf("queue depth %d exceeds cap 8", st.Queued)
	}
	// 100 sends, cap 8, at most one in flight in the writer: the rest
	// must be counted as drops.
	if st.Drops < burst-8-1 {
		t.Errorf("drops = %d, want >= %d", st.Drops, burst-8-1)
	}
}

// TestSlowPeerBoundedQueue covers the backpressure contract against a
// live but slow peer: the queue stays bounded, stale messages are shed
// with a counter, and everything sent is either delivered or counted.
func TestSlowPeerBoundedQueue(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var received atomic.Int64
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			if _, err := ReadFrame(br, nil); err != nil {
				return
			}
			received.Add(1)
			time.Sleep(2 * time.Millisecond) // a slow consumer
		}
	}()

	sink := &sinkNode{}
	n, err := NewNode(0, sink, "127.0.0.1:0", map[smr.NodeID]string{1: ln.Addr().String()},
		WithSendQueueCap(16))
	if err != nil {
		t.Fatal(err)
	}
	go n.Run()
	defer n.Stop()

	const total = 200
	for i := 0; i < total; i++ {
		n.Send(1, testMsg(uint64(i)))
	}
	// Every message is accounted for: drained to the peer or counted as
	// a drop — never silently lost in an unbounded buffer.
	waitFor(t, func() bool {
		st := n.Stats().Peers[1]
		return st.Queued == 0 && received.Load()+int64(st.Drops) == total
	}, "all sends delivered or counted")
	if st := n.Stats().Peers[1]; st.Drops == 0 {
		t.Error("expected the bounded queue to shed load against a slow peer; drops = 0")
	}
}

// TestStopCountsInHandMessage is the regression test for writer drop
// accounting on shutdown: a message already dequeued by pop() and held
// across dial backoff used to vanish silently when Stop cancelled the
// context — it never reached countDrops. Every send must end up
// delivered, queued, or counted as a drop.
func TestStopCountsInHandMessage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	downAddr := ln.Addr().String()
	ln.Close() // deterministic connection-refused

	const total = 5
	sink := &sinkNode{}
	n, err := NewNode(0, sink, "127.0.0.1:0", map[smr.NodeID]string{1: downAddr},
		WithSendQueueCap(64))
	if err != nil {
		t.Fatal(err)
	}
	go n.Run()
	for i := 0; i < total; i++ {
		n.Send(1, testMsg(uint64(i)))
	}
	// Wait until the writer has dequeued the head message and parked in
	// dial backoff: the queue then shows total-1, with one in hand.
	waitFor(t, func() bool { return n.Stats().Peers[1].Queued == total-1 }, "writer to hold one message in hand")
	n.Stop()
	// The writer counts its in-hand message on its (asynchronous) exit
	// path; poll until it has.
	waitFor(t, func() bool { return n.Stats().Peers[1].Drops > 0 },
		"in-hand message to be counted on Stop")
	st := n.Stats().Peers[1]
	if got := int(st.Drops) + st.Queued; got != total {
		t.Errorf("accounting leak: queued(%d) + drops(%d) = %d, want %d",
			st.Queued, st.Drops, got, total)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("0=a:1,1=b:2,1000=c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := map[smr.NodeID]string{0: "a:1", 1: "b:2", 1000: "c:3"}
	if fmt.Sprint(peers) != fmt.Sprint(want) {
		t.Errorf("ParsePeers = %v, want %v", peers, want)
	}
	if _, err := ParsePeers("bogus"); err == nil {
		t.Error("ParsePeers accepted malformed input")
	}
}
