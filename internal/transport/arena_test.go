package transport

// End-to-end acceptance for the codec registry: every protocol in the
// benchmark arena — XPaxos and the four ported baselines — commits a
// request over live loopback TCP with the transport resolving its
// codec by name. The transport imports none of the protocol packages;
// this test links them, their init functions register the codecs, and
// WithCodec selects the right one per cluster. The baselines run with
// SignedRequests so the client-signature verify pipeline (Env.Defer on
// a real goroutine, not netsim) is exercised over the wire too.

import (
	"testing"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/paxos"
	"github.com/xft-consensus/xft/internal/pbft"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/wire"
	"github.com/xft-consensus/xft/internal/xpaxos"
	"github.com/xft-consensus/xft/internal/zab"
	"github.com/xft-consensus/xft/internal/zyzzyva"
)

// arenaCluster is one protocol's replica set plus a closed-loop client
// node, all on loopback TCP.
type arenaCluster struct {
	nodes  []*Node
	client *Node
	done   chan struct{}
}

func (ac *arenaCluster) stop() {
	for _, nd := range ac.nodes {
		nd.Stop()
	}
}

// startCluster boots nReplicas protocol nodes plus one client node
// under the named codec. replica(i) and client(onCommit) build the
// hosted smr.Nodes.
func startCluster(t *testing.T, codec string, nReplicas int,
	replica func(i int) smr.Node, client func(done chan struct{}) smr.Node) *arenaCluster {
	t.Helper()
	ac := &arenaCluster{done: make(chan struct{}, 1)}
	peers := map[smr.NodeID]string{}
	for i := 0; i < nReplicas; i++ {
		nd, err := NewNode(smr.NodeID(i), replica(i), "127.0.0.1:0", peers, WithCodec(codec))
		if err != nil {
			t.Fatal(err)
		}
		peers[smr.NodeID(i)] = nd.Addr()
		ac.nodes = append(ac.nodes, nd)
	}
	cid := smr.NodeID(smr.ClientIDBase)
	cnode, err := NewNode(cid, client(ac.done), "127.0.0.1:0", peers, WithCodec(codec))
	if err != nil {
		t.Fatal(err)
	}
	peers[cid] = cnode.Addr()
	ac.client = cnode
	ac.nodes = append(ac.nodes, cnode)
	for _, nd := range ac.nodes {
		go nd.Run()
	}
	t.Cleanup(ac.stop)
	return ac
}

// runOne submits one op through the cluster's client node and waits
// for its commit callback.
func runOne(t *testing.T, proto string, ac *arenaCluster) {
	t.Helper()
	ac.client.Submit(smr.Invoke{Op: kv.PutOp("arena", []byte(proto))})
	select {
	case <-ac.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: request did not commit over loopback TCP", proto)
	}
}

func TestArenaAllProtocolsCommitOverTCP(t *testing.T) {
	suite := testSuite(t)
	const tf = 1

	t.Run("xpaxos", func(t *testing.T) {
		cfg := xpaxos.Config{
			N: 3, T: tf, Suite: suite,
			Delta:          200 * time.Millisecond,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
		}
		ac := startCluster(t, xpaxos.CodecName, 3,
			func(i int) smr.Node { return xpaxos.NewReplica(smr.NodeID(i), cfg, kv.NewStore()) },
			func(done chan struct{}) smr.Node {
				cl, err := xpaxos.NewClient(smr.NodeID(smr.ClientIDBase), xpaxos.ClientConfig{
					N: 3, T: tf, Suite: suite,
					RequestTimeout: 2 * time.Second,
					OnCommit:       func(op, rep []byte, lat time.Duration) { done <- struct{}{} },
				})
				if err != nil {
					t.Fatal(err)
				}
				return cl
			})
		runOne(t, "xpaxos", ac)
	})

	t.Run("paxos", func(t *testing.T) {
		cfg := paxos.Config{
			N: 3, T: tf, Suite: suite,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			SignedRequests: true,
		}
		ac := startCluster(t, paxos.CodecName, 3,
			func(i int) smr.Node { return paxos.NewReplica(smr.NodeID(i), cfg, kv.NewStore()) },
			func(done chan struct{}) smr.Node {
				cl := paxos.NewClient(smr.NodeID(smr.ClientIDBase), cfg)
				cl.OnCommit = func(op, rep []byte, lat time.Duration) { done <- struct{}{} }
				return cl
			})
		runOne(t, "paxos", ac)
	})

	t.Run("pbft", func(t *testing.T) {
		cfg := pbft.Config{
			N: 4, T: tf, Suite: suite,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			SignedRequests: true,
		}
		ac := startCluster(t, pbft.CodecName, 4,
			func(i int) smr.Node { return pbft.NewReplica(smr.NodeID(i), cfg, kv.NewStore()) },
			func(done chan struct{}) smr.Node {
				cl := pbft.NewClient(smr.NodeID(smr.ClientIDBase), cfg)
				cl.OnCommit = func(op, rep []byte, lat time.Duration) { done <- struct{}{} }
				return cl
			})
		runOne(t, "pbft", ac)
	})

	t.Run("zab", func(t *testing.T) {
		cfg := zab.Config{
			N: 3, T: tf, Suite: suite,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			SignedRequests: true,
		}
		ac := startCluster(t, zab.CodecName, 3,
			func(i int) smr.Node { return zab.NewReplica(smr.NodeID(i), cfg, kv.NewStore()) },
			func(done chan struct{}) smr.Node {
				cl := zab.NewClient(smr.NodeID(smr.ClientIDBase), cfg)
				cl.OnCommit = func(op, rep []byte, lat time.Duration) { done <- struct{}{} }
				return cl
			})
		runOne(t, "zab", ac)
	})

	t.Run("zyzzyva", func(t *testing.T) {
		cfg := zyzzyva.Config{
			N: 4, T: tf, Suite: suite,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			CommitTimeout:  100 * time.Millisecond,
			SignedRequests: true,
		}
		ac := startCluster(t, zyzzyva.CodecName, 4,
			func(i int) smr.Node { return zyzzyva.NewReplica(smr.NodeID(i), cfg, kv.NewStore()) },
			func(done chan struct{}) smr.Node {
				cl := zyzzyva.NewClient(smr.NodeID(smr.ClientIDBase), cfg)
				cl.OnCommit = func(op, rep []byte, lat time.Duration) { done <- struct{}{} }
				return cl
			})
		runOne(t, "zyzzyva", ac)
	})
}

// TestWithCodecUnknownName pins NewNode's failure mode when the codec
// was never registered.
func TestWithCodecUnknownName(t *testing.T) {
	_, err := NewNode(0, &sinkNode{}, "127.0.0.1:0", map[smr.NodeID]string{}, WithCodec("no-such-codec"))
	if err == nil {
		t.Fatal("NewNode accepted an unregistered codec")
	}
}

// TestCodecRegistryHasAllProtocols pins that linking the five protocol
// packages registers all five codecs.
func TestCodecRegistryHasAllProtocols(t *testing.T) {
	for _, name := range []string{
		xpaxos.CodecName, paxos.CodecName, pbft.CodecName, zab.CodecName, zyzzyva.CodecName,
	} {
		if _, ok := wire.Lookup(name); !ok {
			t.Errorf("codec %q not registered", name)
		}
	}
}
