package transport

import (
	"sync"

	"github.com/xft-consensus/xft/internal/smr"
)

// sendQueue is the bounded per-peer outbox feeding a connection's
// writer goroutine. When the queue is full the oldest queued message is
// dropped and counted — backpressure against slow or down peers without
// either blocking the replica event loop or losing messages silently.
// The protocols tolerate loss by design; what matters is that loss is
// bounded, biased toward stale messages, and observable.
type sendQueue struct {
	mu    sync.Mutex
	buf   []smr.Message // ring buffer
	head  int
	count int
	drops uint64

	// notify wakes the writer when the queue transitions towards
	// non-empty; capacity 1 coalesces bursts.
	notify chan struct{}
}

func newSendQueue(capacity int) *sendQueue {
	return &sendQueue{
		buf:    make([]smr.Message, capacity),
		notify: make(chan struct{}, 1),
	}
}

// push enqueues m, evicting the oldest queued message if the queue is
// full. It never blocks.
func (q *sendQueue) push(m smr.Message) {
	q.mu.Lock()
	if q.count == len(q.buf) {
		q.buf[q.head] = nil
		q.head = (q.head + 1) % len(q.buf)
		q.count--
		q.drops++
	}
	q.buf[(q.head+q.count)%len(q.buf)] = m
	q.count++
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pop dequeues the oldest message, reporting false on an empty queue.
func (q *sendQueue) pop() (smr.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return nil, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return m, true
}

// empty reports whether the queue currently holds no messages.
func (q *sendQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count == 0
}

// countDrops records n messages lost outside the queue itself (e.g.
// frames stranded in the write buffer when the connection fails),
// keeping the drop counter an honest total.
func (q *sendQueue) countDrops(n uint64) {
	q.mu.Lock()
	q.drops += n
	q.mu.Unlock()
}

// stats returns the current depth and the cumulative drop count.
func (q *sendQueue) stats() (depth int, drops uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count, q.drops
}
