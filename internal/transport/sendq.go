package transport

import (
	"sync"

	"github.com/xft-consensus/xft/internal/smr"
)

// sendQueue is the bounded per-peer outbox feeding a connection's
// writer goroutine. When the queue is full a queued message is dropped
// and counted — backpressure against slow or down peers without either
// blocking the replica event loop or losing messages silently. The
// protocols tolerate loss by design; what matters is that loss is
// bounded, biased toward stale and low-value messages, and observable.
//
// Messages are split into two classes. Critical traffic (everything by
// default: view change, suspect, commit votes, prepares) is served
// first and is never evicted to make room for bulk. Bulk traffic
// (messages marked smr.BulkMessage: lazy replication, state transfer)
// rides along while there is room: when the queue overflows, the
// oldest bulk message is evicted first, so a lazy-replication burst to
// a slow peer cannot crowd out the view change trying to reach it —
// and a protocol-critical burst sheds the queued bulk backlog rather
// than its own tail.
type sendQueue struct {
	mu       sync.Mutex
	critical msgRing
	bulk     msgRing
	capacity int
	drops    uint64

	// notify wakes the writer when the queue transitions towards
	// non-empty; capacity 1 coalesces bursts.
	notify chan struct{}
}

func newSendQueue(capacity int) *sendQueue {
	return &sendQueue{
		capacity: capacity,
		notify:   make(chan struct{}, 1),
	}
}

// push enqueues m, evicting a queued message if the queue is full:
// the oldest bulk message when any bulk is queued, otherwise the
// oldest message of m's own class. It never blocks.
func (q *sendQueue) push(m smr.Message) {
	bulk := smr.IsBulk(m)
	q.mu.Lock()
	if q.critical.len()+q.bulk.len() >= q.capacity {
		switch {
		case q.bulk.len() > 0:
			q.bulk.popFront()
		case bulk:
			// No bulk to shed and the newcomer is bulk itself: shed it
			// rather than displace critical traffic.
			q.drops++
			q.mu.Unlock()
			return
		default:
			q.critical.popFront()
		}
		q.drops++
	}
	if bulk {
		q.bulk.push(m)
	} else {
		q.critical.push(m)
	}
	q.mu.Unlock()
	q.kick()
}

// kick wakes the writer without enqueuing anything — used by push and
// by the keepalive prober, whose ping request travels out of band (a
// flag on the peer, not a queued message).
func (q *sendQueue) kick() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pop dequeues the oldest critical message, falling back to bulk, and
// reports false on an empty queue.
func (q *sendQueue) pop() (smr.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.critical.len() > 0 {
		return q.critical.popFront(), true
	}
	if q.bulk.len() > 0 {
		return q.bulk.popFront(), true
	}
	return nil, false
}

// empty reports whether the queue currently holds no messages.
func (q *sendQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.critical.len()+q.bulk.len() == 0
}

// countDrops records n messages lost outside the queue itself (e.g.
// frames stranded in the write buffer when the connection fails),
// keeping the drop counter an honest total.
func (q *sendQueue) countDrops(n uint64) {
	q.mu.Lock()
	q.drops += n
	q.mu.Unlock()
}

// stats returns the current depth and the cumulative drop count.
func (q *sendQueue) stats() (depth int, drops uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.critical.len() + q.bulk.len(), q.drops
}

// msgRing is a growable FIFO ring of messages. It grows on demand up
// to whatever the sendQueue's shared capacity admits, so neither class
// reserves space it is not using.
type msgRing struct {
	buf   []smr.Message
	head  int
	count int
}

func (r *msgRing) len() int { return r.count }

func (r *msgRing) push(m smr.Message) {
	if r.count == len(r.buf) {
		grown := make([]smr.Message, max(8, 2*len(r.buf)))
		for i := 0; i < r.count; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.count)%len(r.buf)] = m
	r.count++
}

func (r *msgRing) popFront() smr.Message {
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return m
}
