package transport

import (
	"fmt"
	"testing"

	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

type prioMsg struct {
	name string
	bulk bool
}

func (m prioMsg) Type() string  { return m.name }
func (m prioMsg) WireSize() int { return 64 }
func (m prioMsg) Bulk() bool    { return m.bulk }

func drainQueue(q *sendQueue) []string {
	var out []string
	for {
		m, ok := q.pop()
		if !ok {
			return out
		}
		out = append(out, m.Type())
	}
}

// TestSendQueueCriticalFirst: critical messages are served before
// queued bulk traffic regardless of arrival order.
func TestSendQueueCriticalFirst(t *testing.T) {
	q := newSendQueue(8)
	q.push(prioMsg{name: "lazy-1", bulk: true})
	q.push(prioMsg{name: "vc-1"})
	q.push(prioMsg{name: "lazy-2", bulk: true})
	q.push(prioMsg{name: "vc-2"})
	got := drainQueue(q)
	want := []string{"vc-1", "vc-2", "lazy-1", "lazy-2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("drain order = %v, want %v", got, want)
	}
}

// TestSendQueueEvictsBulkFirst: overflow sheds the oldest bulk message
// before touching critical traffic, so a lazy-replication backlog to a
// slow peer cannot crowd out a view change.
func TestSendQueueEvictsBulkFirst(t *testing.T) {
	q := newSendQueue(4)
	for i := 0; i < 3; i++ {
		q.push(prioMsg{name: fmt.Sprintf("lazy-%d", i), bulk: true})
	}
	q.push(prioMsg{name: "commit-0"})
	// Queue full (3 bulk + 1 critical): four critical arrivals must
	// evict all three bulk messages, then one of their own.
	for i := 1; i <= 4; i++ {
		q.push(prioMsg{name: fmt.Sprintf("commit-%d", i)})
	}
	got := drainQueue(q)
	want := []string{"commit-1", "commit-2", "commit-3", "commit-4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("drain = %v, want %v (oldest critical evicted only after all bulk)", got, want)
	}
	if _, drops := q.stats(); drops != 4 {
		t.Errorf("drops = %d, want 4", drops)
	}
}

// TestSendQueueBulkNeverDisplacesCritical: when the queue is full of
// critical traffic, an arriving bulk message is shed itself.
func TestSendQueueBulkNeverDisplacesCritical(t *testing.T) {
	q := newSendQueue(3)
	for i := 0; i < 3; i++ {
		q.push(prioMsg{name: fmt.Sprintf("vc-%d", i)})
	}
	q.push(prioMsg{name: "lazy", bulk: true})
	got := drainQueue(q)
	want := []string{"vc-0", "vc-1", "vc-2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("drain = %v, want %v", got, want)
	}
	if _, drops := q.stats(); drops != 1 {
		t.Errorf("drops = %d, want 1 (the bulk arrival itself)", drops)
	}
}

// TestSendQueueStatsAndEmpty: depth covers both classes.
func TestSendQueueStatsAndEmpty(t *testing.T) {
	q := newSendQueue(8)
	if !q.empty() {
		t.Fatal("fresh queue not empty")
	}
	q.push(prioMsg{name: "a"})
	q.push(prioMsg{name: "b", bulk: true})
	if depth, _ := q.stats(); depth != 2 {
		t.Fatalf("depth = %d, want 2", depth)
	}
	if q.empty() {
		t.Fatal("queue with messages reports empty")
	}
	drainQueue(q)
	if !q.empty() {
		t.Fatal("drained queue not empty")
	}
}

// TestBulkMarkerWiring: the xpaxos lazy-replication messages classify
// as bulk while protocol-critical ones keep default priority. Checked
// here because the transport is what acts on the marker.
func TestBulkMarkerWiring(t *testing.T) {
	for _, m := range []smr.Message{&xpaxos.MsgLazyCommit{}, &xpaxos.MsgLazyChk{}} {
		if !smr.IsBulk(m) {
			t.Errorf("%s not marked bulk", m.Type())
		}
	}
	for _, m := range []smr.Message{&xpaxos.MsgSuspect{}, &xpaxos.MsgViewChange{}, &xpaxos.MsgCommit{}, &xpaxos.MsgPrepare{}} {
		if smr.IsBulk(m) {
			t.Errorf("protocol-critical %s classified bulk", m.Type())
		}
	}
}
