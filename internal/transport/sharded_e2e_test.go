package transport

// End-to-end acceptance for multi-group sharding over live loopback
// TCP: three replica machines each host one XPaxos replica per group
// behind an smr.GroupMux — one transport endpoint, one crypto suite,
// one event loop per machine — and a fourth node hosts the client-side
// shard.Router. Writes submitted to the router must commit in the
// group that owns their key, and reads routed the same way must see
// them, proving both groups are live on the shared transport plane.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/shard"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// shardedCommit is one commit ack surfaced from a per-group client.
type shardedCommit struct {
	group smr.GroupID
	op    []byte
	reply []byte
}

func TestShardedRouterCommitsToMultipleGroupsOverTCP(t *testing.T) {
	suite := testSuite(t)
	const (
		nReplicas = 3
		tf        = 1
	)
	groupIDs := []smr.GroupID{0, 1}

	cfg := xpaxos.Config{
		N: nReplicas, T: tf, Suite: suite,
		Delta:          200 * time.Millisecond,
		BatchTimeout:   2 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}

	// Replica machines: one transport Node each, hosting a replica of
	// every group behind a GroupMux.
	peers := map[smr.NodeID]string{}
	var nodes []*Node
	for i := 0; i < nReplicas; i++ {
		mux := smr.NewGroupMux()
		for _, g := range groupIDs {
			mux.MustRegister(g, xpaxos.NewReplica(smr.NodeID(i), cfg, kv.NewStore()))
		}
		nd, err := NewNode(smr.NodeID(i), mux, "127.0.0.1:0", peers, WithCodec(xpaxos.CodecName))
		if err != nil {
			t.Fatal(err)
		}
		peers[smr.NodeID(i)] = nd.Addr()
		nodes = append(nodes, nd)
	}

	// Client machine: a shard router over both groups, one XPaxos
	// client each, sharing the same transport endpoint.
	ring, err := shard.NewRing(groupIDs, 0)
	if err != nil {
		t.Fatal(err)
	}
	commits := make(chan shardedCommit, 64)
	cid := smr.NodeID(smr.ClientIDBase)
	router, err := shard.NewRouter(ring, func(g smr.GroupID) (*xpaxos.Client, error) {
		return xpaxos.NewClient(cid, xpaxos.ClientConfig{
			N: nReplicas, T: tf, Suite: suite,
			RequestTimeout: 2 * time.Second,
			OnCommit: func(op, rep []byte, lat time.Duration) {
				commits <- shardedCommit{group: g, op: op, reply: rep}
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	cnode, err := NewNode(cid, router, "127.0.0.1:0", peers, WithCodec(xpaxos.CodecName))
	if err != nil {
		t.Fatal(err)
	}
	peers[cid] = cnode.Addr()
	nodes = append(nodes, cnode)
	for _, nd := range nodes {
		go nd.Run()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})

	// Pick three keys per group, by ring ownership, so the workload is
	// guaranteed to span both shards.
	keys := map[smr.GroupID][]string{}
	for i := 0; len(keys[0]) < 3 || len(keys[1]) < 3; i++ {
		k := fmt.Sprintf("shard-key-%d", i)
		g := ring.Group(k)
		if len(keys[g]) < 3 {
			keys[g] = append(keys[g], k)
		}
		if i > 1<<16 {
			t.Fatal("ring never assigned 3 keys to each group")
		}
	}

	// One op in flight at a time: submit, wait for the ack, check it
	// came back from the owning group.
	do := func(op []byte, wantGroup smr.GroupID) shardedCommit {
		t.Helper()
		cnode.Submit(smr.Invoke{Op: op})
		select {
		case c := <-commits:
			if c.group != wantGroup {
				t.Fatalf("op committed in group %d, ring owns it in group %d", c.group, wantGroup)
			}
			if !bytes.Equal(c.op, op) {
				t.Fatalf("commit ack for wrong op")
			}
			return c
		case <-time.After(10 * time.Second):
			t.Fatalf("op for group %d did not commit over loopback TCP", wantGroup)
		}
		panic("unreachable")
	}

	for g, ks := range keys {
		for _, k := range ks {
			c := do(kv.PutOp(k, []byte("val-"+k)), g)
			if len(c.reply) == 0 || c.reply[0] != kv.StatusOK {
				t.Fatalf("put %q: bad reply % x", k, c.reply)
			}
		}
	}

	// Read everything back through the router: the value must come from
	// the same shard that executed the write.
	for g, ks := range keys {
		for _, k := range ks {
			c := do(kv.GetOp(k), g)
			want := append([]byte{kv.StatusOK}, []byte("val-"+k)...)
			if !bytes.Equal(c.reply, want) {
				t.Fatalf("get %q from group %d: reply % x, want % x", k, g, c.reply, want)
			}
		}
	}

	// The shared plane must have stayed clean: no frame arrived for a
	// group a node does not host, and nothing unsharded leaked in.
	for i, nd := range nodes {
		st := nd.Stats()
		if st.Groups == nil {
			t.Fatalf("node %d reports no group stats", i)
		}
		if st.Groups.Groups != len(groupIDs) {
			t.Fatalf("node %d hosts %d groups, want %d", i, st.Groups.Groups, len(groupIDs))
		}
		if st.Groups.UnknownGroup != 0 || st.Groups.Ungrouped != 0 {
			t.Fatalf("node %d misrouted frames: unknown-group=%d ungrouped=%d",
				i, st.Groups.UnknownGroup, st.Groups.Ungrouped)
		}
	}
}
