// Package transport runs a single protocol node over real TCP — the
// deployment mode behind cmd/xft-server and cmd/xft-client. Messages
// travel as length-prefixed frames (frame.go) carrying a gob-encoded
// envelope, so partial reads and oversized inputs fail cleanly. Peers
// are dialed lazily and redialed on failure; messages to unreachable
// peers are dropped, which the protocols tolerate by design.
package transport

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// envelope frames a message on the wire.
type envelope struct {
	From smr.NodeID
	Msg  smr.Message
}

// RegisterXPaxosMessages registers every XPaxos message type with gob.
// Call once per process before Serve/Dial.
func RegisterXPaxosMessages() {
	gob.Register(&xpaxos.MsgReplicate{})
	gob.Register(&xpaxos.MsgResend{})
	gob.Register(&xpaxos.MsgPrepare{})
	gob.Register(&xpaxos.MsgCommitReq{})
	gob.Register(&xpaxos.MsgCommit{})
	gob.Register(&xpaxos.MsgReply{})
	gob.Register(&xpaxos.MsgReplyDigest{})
	gob.Register(&xpaxos.MsgReplySign{})
	gob.Register(&xpaxos.MsgSignedReply{})
	gob.Register(&xpaxos.MsgSuspect{})
	gob.Register(&xpaxos.MsgViewChange{})
	gob.Register(&xpaxos.MsgVCFinal{})
	gob.Register(&xpaxos.MsgVCConfirm{})
	gob.Register(&xpaxos.MsgNewView{})
	gob.Register(&xpaxos.MsgPrechk{})
	gob.Register(&xpaxos.MsgChkpt{})
	gob.Register(&xpaxos.MsgLazyChk{})
	gob.Register(&xpaxos.MsgLazyCommit{})
	gob.Register(&xpaxos.MsgFaultProof{})
	gob.Register(&xpaxos.MsgForkIIQuery{})
}

// Node hosts one protocol node on a TCP endpoint.
type Node struct {
	id    smr.NodeID
	node  smr.Node
	peers map[smr.NodeID]string

	inbox    chan smr.Event
	stop     chan struct{}
	stopOnce sync.Once
	ln       net.Listener
	start    time.Time

	mu    sync.Mutex
	conns map[smr.NodeID]*peerConn

	nextTimer smr.TimerID
	cancelled map[smr.TimerID]bool
	pending   map[smr.TimerID]*time.Timer
	wg        sync.WaitGroup
}

// peerConn is one outbound connection. Each frame carries a
// self-contained gob stream (encoder state does not span frames), so a
// receiver can resynchronize at any frame boundary; buf is reused
// across sends under mu.
type peerConn struct {
	mu  sync.Mutex
	buf bytes.Buffer
	c   net.Conn
}

// NewNode prepares a node bound to listenAddr; peers maps every node
// id (replicas and clients) to its address.
func NewNode(id smr.NodeID, node smr.Node, listenAddr string, peers map[smr.NodeID]string) (*Node, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	return &Node{
		id: id, node: node, peers: peers, ln: ln,
		inbox:     make(chan smr.Event, 4096),
		stop:      make(chan struct{}),
		conns:     make(map[smr.NodeID]*peerConn),
		cancelled: make(map[smr.TimerID]bool),
		pending:   make(map[smr.TimerID]*time.Timer),
		start:     time.Now(),
	}, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Run starts the accept loop and the node's event loop; it blocks
// until Stop.
func (n *Node) Run() {
	n.wg.Add(1)
	go n.acceptLoop()
	n.node.Init(n)
	n.node.Step(smr.Start{})
	for {
		select {
		case <-n.stop:
			n.wg.Wait()
			return
		case ev := <-n.inbox:
			if tf, ok := ev.(smr.TimerFired); ok {
				if n.cancelled[tf.ID] {
					delete(n.cancelled, tf.ID)
					continue
				}
				delete(n.pending, tf.ID)
			}
			n.node.Step(ev)
		}
	}
}

// Submit injects an event (e.g. smr.Invoke) into the node's loop.
func (n *Node) Submit(ev smr.Event) {
	select {
	case n.inbox <- ev:
	case <-n.stop:
	}
}

// Stop terminates the node. It is idempotent: redundant calls (e.g. a
// deferred Stop racing an explicit one) are no-ops.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.ln.Close()
		n.mu.Lock()
		for _, pc := range n.conns {
			pc.c.Close()
		}
		n.mu.Unlock()
	})
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	var buf []byte
	for {
		payload, err := ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = payload // reuse the grown storage for the next frame
		var env envelope
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
			return
		}
		select {
		case n.inbox <- smr.Recv{From: env.From, Msg: env.Msg}:
		case <-n.stop:
			return
		}
	}
}

// --- smr.Env ---------------------------------------------------------------

// ID implements smr.Env.
func (n *Node) ID() smr.NodeID { return n.id }

// Now implements smr.Env.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// Send implements smr.Env: lazily dialed, dropped on failure. Safe
// for concurrent callers; the per-connection lock makes each frame
// atomic on the wire.
func (n *Node) Send(to smr.NodeID, m smr.Message) {
	pc := n.conn(to)
	if pc == nil {
		return
	}
	pc.mu.Lock()
	pc.buf.Reset()
	err := gob.NewEncoder(&pc.buf).Encode(envelope{From: n.id, Msg: m})
	if err == nil {
		err = WriteFrame(pc.c, pc.buf.Bytes())
	}
	pc.mu.Unlock()
	if err != nil {
		n.dropConn(to, pc)
	}
}

func (n *Node) conn(to smr.NodeID) *peerConn {
	n.mu.Lock()
	pc := n.conns[to]
	n.mu.Unlock()
	if pc != nil {
		return pc
	}
	addr, ok := n.peers[to]
	if !ok {
		return nil
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil
	}
	pc = &peerConn{c: c}
	n.mu.Lock()
	if existing := n.conns[to]; existing != nil {
		n.mu.Unlock()
		c.Close()
		return existing
	}
	n.conns[to] = pc
	n.mu.Unlock()
	return pc
}

func (n *Node) dropConn(to smr.NodeID, pc *peerConn) {
	n.mu.Lock()
	if n.conns[to] == pc {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	pc.c.Close()
}

// SetTimer implements smr.Env.
func (n *Node) SetTimer(d time.Duration, kind string) smr.TimerID {
	n.nextTimer++
	id := n.nextTimer
	t := time.AfterFunc(d, func() {
		select {
		case n.inbox <- smr.TimerFired{ID: id, Kind: kind}:
		case <-n.stop:
		}
	})
	n.pending[id] = t
	return id
}

// CancelTimer implements smr.Env.
func (n *Node) CancelTimer(id smr.TimerID) {
	if t, ok := n.pending[id]; ok && t.Stop() {
		delete(n.pending, id)
		return
	}
	n.cancelled[id] = true
}

var _ smr.Env = (*Node)(nil)

// ParsePeers parses "0=host:port,1=host:port,..." into a peer map.
func ParsePeers(s string) (map[smr.NodeID]string, error) {
	peers := make(map[smr.NodeID]string)
	if s == "" {
		return peers, nil
	}
	var id int
	var addr string
	for _, part := range splitComma(s) {
		if _, err := fmt.Sscanf(part, "%d=%s", &id, &addr); err != nil {
			return nil, fmt.Errorf("transport: bad peer entry %q", part)
		}
		peers[smr.NodeID(id)] = addr
	}
	return peers, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
