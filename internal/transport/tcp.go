// Package transport runs a single protocol node over real TCP — the
// deployment mode behind cmd/xft-server and cmd/xft-client. Messages
// travel as length-prefixed frames (frame.go) whose payload is a fixed
// header (sender id) followed by the XPaxos wire codec's tag+body
// encoding (internal/xpaxos/codec.go) — no gob, no type descriptors,
// no reflection on the hot path.
//
// Each peer has a dedicated writer goroutine fed by a bounded
// drop-oldest send queue (sendq.go): Send never dials and never blocks,
// so a down or slow peer cannot stall the replica event loop. Dialing,
// redialing with backoff, and write-side buffering all live in the
// writer. Drops are counted per peer and surfaced via PeerStats.
package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/wire"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// Tunables (overridable per node via Options).
const (
	// DefaultSendQueueCap bounds each peer's send queue, in messages.
	DefaultSendQueueCap = 1024
	// DefaultDialTimeout bounds one dial attempt to a peer.
	DefaultDialTimeout = 2 * time.Second

	// Redial backoff bounds: after a failed dial the writer waits
	// dialBackoffMin, doubling up to dialBackoffMax, before retrying.
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = 1 * time.Second

	// writeBufSize is the per-connection write buffer; the writer
	// flushes whenever its queue drains, so buffering only coalesces
	// back-to-back frames and never delays a lone message.
	writeBufSize = 64 << 10
)

// Option customizes a Node.
type Option func(*Node)

// WithSendQueueCap sets the per-peer send queue capacity in messages.
func WithSendQueueCap(n int) Option {
	return func(nd *Node) {
		if n > 0 {
			nd.queueCap = n
		}
	}
}

// WithDialTimeout sets the per-attempt dial timeout.
func WithDialTimeout(d time.Duration) Option {
	return func(nd *Node) {
		if d > 0 {
			nd.dialTimeout = d
		}
	}
}

// Node hosts one protocol node on a TCP endpoint.
type Node struct {
	id    smr.NodeID
	node  smr.Node
	peers map[smr.NodeID]string

	inbox  chan smr.Event
	ctx    context.Context
	cancel context.CancelFunc

	stopOnce sync.Once
	ln       net.Listener
	start    time.Time

	queueCap    int
	dialTimeout time.Duration

	mu      sync.Mutex
	stopped bool
	conns   map[smr.NodeID]*peerConn
	inbound map[net.Conn]struct{}

	// timers is owned by the node goroutine: Set/Cancel run from Step,
	// Deliver from the Run loop.
	timers *smr.TimerSet

	wg sync.WaitGroup
}

// peerConn is one peer's outbound path: a bounded queue drained by a
// writer goroutine. The connection itself is owned by the writer; the
// mutex only guards the handle so Stop (and write-error recovery) can
// close it from outside.
type peerConn struct {
	addr string
	q    *sendQueue

	mu   sync.Mutex
	c    net.Conn
	shut bool
}

// setConn publishes a freshly dialed connection. If shutdown already
// ran — a dial completing concurrently with Stop would otherwise
// publish a connection nobody closes, and a writer stuck in WriteFrame
// on it would hang Stop — the connection is closed instead and the
// writer must exit.
func (pc *peerConn) setConn(c net.Conn) bool {
	pc.mu.Lock()
	if pc.shut {
		pc.mu.Unlock()
		c.Close()
		return false
	}
	pc.c = c
	pc.mu.Unlock()
	return true
}

// closeConn drops the current connection (write-error recovery); the
// writer will redial.
func (pc *peerConn) closeConn() {
	pc.mu.Lock()
	if pc.c != nil {
		pc.c.Close()
		pc.c = nil
	}
	pc.mu.Unlock()
}

// shutdown closes the current connection and latches the peer closed.
func (pc *peerConn) shutdown() {
	pc.mu.Lock()
	pc.shut = true
	if pc.c != nil {
		pc.c.Close()
		pc.c = nil
	}
	pc.mu.Unlock()
}

// NewNode prepares a node bound to listenAddr; peers maps every node
// id (replicas and clients) to its address.
func NewNode(id smr.NodeID, node smr.Node, listenAddr string, peers map[smr.NodeID]string, opts ...Option) (*Node, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		id: id, node: node, peers: peers, ln: ln,
		inbox:       make(chan smr.Event, 4096),
		ctx:         ctx,
		cancel:      cancel,
		queueCap:    DefaultSendQueueCap,
		dialTimeout: DefaultDialTimeout,
		conns:       make(map[smr.NodeID]*peerConn),
		inbound:     make(map[net.Conn]struct{}),
		timers:      smr.NewTimerSet(),
		start:       time.Now(),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Run starts the accept loop and the node's event loop; it blocks
// until Stop.
func (n *Node) Run() {
	n.wg.Add(1)
	go n.acceptLoop()
	n.node.Init(n)
	n.node.Step(smr.Start{})
	for {
		select {
		case <-n.ctx.Done():
			n.wg.Wait()
			return
		case ev := <-n.inbox:
			if tf, ok := ev.(smr.TimerFired); ok && !n.timers.Deliver(tf) {
				continue
			}
			n.node.Step(ev)
		}
	}
}

// Submit injects an event (e.g. smr.Invoke) into the node's loop.
func (n *Node) Submit(ev smr.Event) {
	select {
	case n.inbox <- ev:
	case <-n.ctx.Done():
	}
}

// Stop terminates the node: the listener, every inbound connection,
// and every peer writer. It is idempotent: redundant calls (e.g. a
// deferred Stop racing an explicit one) are no-ops.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		n.mu.Lock()
		n.stopped = true
		n.mu.Unlock()
		n.cancel()
		n.ln.Close()
		n.mu.Lock()
		for _, pc := range n.conns {
			pc.shutdown()
		}
		for c := range n.inbound {
			c.Close()
		}
		n.mu.Unlock()
	})
}

// PeerStats reports each peer's current send-queue depth and its
// cumulative drop count (queue evictions plus frames lost to write
// errors). Peers that were never sent to are absent.
type PeerStats struct {
	Queued int
	Drops  uint64
}

// Stats aggregates a node's transport and protocol health counters.
type Stats struct {
	// Peers holds per-peer send statistics.
	Peers map[smr.NodeID]PeerStats
	// Intake reports the hosted protocol node's request-admission
	// health (nil when the node does not track intake — e.g. clients).
	Intake *smr.IntakeStats
}

// intakeReporter is implemented by hosted nodes that track request
// admission (xpaxos.Replica). The stats type is smr's, keeping this
// package protocol-agnostic (the xpaxos import above is for the wire
// codec only).
type intakeReporter interface {
	IntakeStats() smr.IntakeStats
}

// Stats returns transport and intake statistics for monitoring and the
// bench harness.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	peers := make(map[smr.NodeID]PeerStats, len(n.conns))
	for id, pc := range n.conns {
		depth, drops := pc.q.stats()
		peers[id] = PeerStats{Queued: depth, Drops: drops}
	}
	n.mu.Unlock()
	out := Stats{Peers: peers}
	if ir, ok := n.node.(intakeReporter); ok {
		st := ir.IntakeStats()
		out.Intake = &st
	}
	return out
}

// ---------------------------------------------------------------------------
// Inbound path
// ---------------------------------------------------------------------------

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			conn.Close()
			continue
		}
		n.inbound[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		// Each frame gets a fresh buffer: the decoded message's byte
		// fields alias it, and the message outlives this iteration.
		payload, err := ReadFrame(br, nil)
		if err != nil {
			return
		}
		rd := wire.NewReader(payload)
		from, ok := rd.I64()
		if !ok {
			return // malformed header: desynced peer, drop the conn
		}
		msg, err := xpaxos.DecodeMessage(payload[8:])
		if err != nil {
			return
		}
		select {
		case n.inbox <- smr.Recv{From: smr.NodeID(from), Msg: msg}:
		case <-n.ctx.Done():
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Outbound path
// ---------------------------------------------------------------------------

// Send implements smr.Env. It only enqueues: encoding, dialing and
// writing all happen on the peer's writer goroutine, so Send returns in
// O(1) regardless of peer health. Overflow evicts the oldest queued
// message (counted in Stats).
func (n *Node) Send(to smr.NodeID, m smr.Message) {
	pc := n.peer(to)
	if pc == nil {
		return
	}
	pc.q.push(m)
}

// peer returns to's peerConn, starting its writer on first use.
func (n *Node) peer(to smr.NodeID) *peerConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	if pc := n.conns[to]; pc != nil {
		return pc
	}
	addr, ok := n.peers[to]
	if !ok || n.stopped {
		return nil
	}
	pc := &peerConn{addr: addr, q: newSendQueue(n.queueCap)}
	n.conns[to] = pc
	n.wg.Add(1)
	go n.writeLoop(pc)
	return pc
}

// writeLoop drains pc's queue onto its connection, (re)dialing as
// needed. A failed dial parks the loop in capped exponential backoff
// while the bounded queue absorbs — and, when full, sheds — new
// traffic. Frames are buffered and flushed when the queue drains, so
// bursts coalesce into few syscalls without delaying a lone message.
func (n *Node) writeLoop(pc *peerConn) {
	defer n.wg.Done()
	defer pc.closeConn()
	var bw *bufio.Writer
	// unflushed counts frames accepted by bw since its last successful
	// flush: if the connection fails they die in the buffer, and the
	// drop counter must cover them too ("counted, not silent"). It can
	// overcount — bufio flushes transparently when full, so some may
	// already be on the wire — but never undercounts.
	var unflushed uint64
	buf := wire.New(4 << 10) // reused per-frame encode buffer
	backoff := dialBackoffMin
	dialer := net.Dialer{Timeout: n.dialTimeout}
	fail := func(extra uint64) {
		pc.closeConn()
		bw = nil
		pc.q.countDrops(unflushed + extra)
		unflushed = 0
	}
	for {
		m, ok := pc.q.pop()
		if !ok {
			if bw != nil {
				if err := bw.Flush(); err != nil {
					fail(0)
				} else {
					unflushed = 0
				}
			}
			select {
			case <-pc.q.notify:
				continue
			case <-n.ctx.Done():
				return
			}
		}
		// Ensure a live connection; the dequeued message waits through
		// backoff (newer messages accumulate behind it, oldest-first
		// eviction applies if the peer stays down).
		for bw == nil {
			c, err := dialer.DialContext(n.ctx, "tcp", pc.addr)
			if err != nil {
				if n.ctx.Err() != nil {
					return
				}
				select {
				case <-time.After(backoff):
				case <-n.ctx.Done():
					return
				}
				if backoff *= 2; backoff > dialBackoffMax {
					backoff = dialBackoffMax
				}
				continue
			}
			backoff = dialBackoffMin
			if !pc.setConn(c) {
				return // Stop won the race; the conn is closed
			}
			bw = bufio.NewWriterSize(c, writeBufSize)
		}
		buf.Reset()
		buf.I64(int64(n.id))
		if err := xpaxos.AppendMessage(buf, m); err != nil {
			pc.q.countDrops(1) // not encodable: shed, but count
			continue
		}
		if err := WriteFrame(bw, buf.Done()); err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// Rejected before any bytes hit the stream: the
				// connection is still in sync, shed just this message.
				pc.q.countDrops(1)
				continue
			}
			fail(1)
			continue
		}
		unflushed++
		if pc.q.empty() {
			if err := bw.Flush(); err != nil {
				fail(0)
			} else {
				unflushed = 0
			}
		}
	}
}

// ---------------------------------------------------------------------------
// smr.Env
// ---------------------------------------------------------------------------

// ID implements smr.Env.
func (n *Node) ID() smr.NodeID { return n.id }

// Now implements smr.Env.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// SetTimer implements smr.Env. TimerFired events are never dropped on
// a full inbox (the firing goroutine waits for space or shutdown):
// only delivery clears the timer's bookkeeping.
func (n *Node) SetTimer(d time.Duration, kind string) smr.TimerID {
	return n.timers.Set(d, kind, func(tf smr.TimerFired) {
		select {
		case n.inbox <- tf:
		case <-n.ctx.Done():
		}
	})
}

// CancelTimer implements smr.Env.
func (n *Node) CancelTimer(id smr.TimerID) { n.timers.Cancel(id) }

// Defer implements smr.Env: work runs on its own goroutine and the
// completion re-enters the node's loop as an smr.Async event. Like
// timers, completions are never dropped on a full inbox — protocol
// state machines track deferred work in flight, and losing a
// completion would strand that bookkeeping — so the send blocks until
// the loop drains it or the node stops.
func (n *Node) Defer(kind string, work func(), apply func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		work()
		select {
		case n.inbox <- smr.Async{Kind: kind, Apply: apply}:
		case <-n.ctx.Done():
		}
	}()
}

var _ smr.Env = (*Node)(nil)

// ParsePeers parses "0=host:port,1=host:port,..." into a peer map.
func ParsePeers(s string) (map[smr.NodeID]string, error) {
	peers := make(map[smr.NodeID]string)
	if s == "" {
		return peers, nil
	}
	var id int
	var addr string
	for _, part := range splitComma(s) {
		if _, err := fmt.Sscanf(part, "%d=%s", &id, &addr); err != nil {
			return nil, fmt.Errorf("transport: bad peer entry %q", part)
		}
		peers[smr.NodeID(id)] = addr
	}
	return peers, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
