// Package transport runs a single protocol node over real TCP — the
// deployment mode behind cmd/xft-server and cmd/xft-client. Messages
// travel as length-prefixed frames (frame.go) whose payload is a fixed
// header (sender id) followed by a wire codec's tag+body encoding —
// no gob, no type descriptors, no reflection on the hot path. The
// codec is resolved by name from the protocol-agnostic registry
// (internal/wire): WithCodec selects the hosted protocol's codec, and
// the default is XPaxos. The transport itself knows nothing about any
// protocol's message types.
//
// Each peer has a dedicated writer goroutine fed by a bounded
// drop-oldest send queue (sendq.go): Send never dials and never blocks,
// so a down or slow peer cannot stall the replica event loop. Dialing,
// redialing with backoff, and write-side buffering all live in the
// writer. Drops are counted per peer and surfaced via PeerStats.
//
// Two optional hardening layers ride on top (ROADMAP: channel
// security + health probes):
//
//   - WithTLS upgrades every connection to mutual TLS 1.3 with
//     per-node certificates bound to node ids (tls.go), and the read
//     loop enforces that a frame's claimed sender matches the
//     authenticated identity;
//   - WithKeepalive runs ping/pong probes (frame.go control frames)
//     over each replica peer's connection, tracking per-peer RTT and
//     last-seen, and delivers smr.PeerDown / smr.PeerUp transitions
//     into the node's inbox — so a protocol can suspect a silent peer
//     at probe-timeout granularity instead of waiting for a
//     retransmission timeout.
package transport

import (
	"bufio"
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/wire"
)

// DefaultCodec is the wire codec used when WithCodec is not given.
// It matches the registry name of the XPaxos codec without importing
// the package (the hosting binary registers whichever codecs it links).
const DefaultCodec = "xpaxos"

// Tunables (overridable per node via Options).
const (
	// DefaultSendQueueCap bounds each peer's send queue, in messages.
	DefaultSendQueueCap = 1024
	// DefaultDialTimeout bounds one dial attempt to a peer (and one TLS
	// handshake, on either side).
	DefaultDialTimeout = 2 * time.Second

	// Redial backoff bounds: after a failed dial the writer waits
	// dialBackoffMin, doubling up to dialBackoffMax, before retrying.
	dialBackoffMin = 50 * time.Millisecond
	dialBackoffMax = 1 * time.Second

	// writeBufSize is the per-connection write buffer; the writer
	// flushes whenever its queue drains, so buffering only coalesces
	// back-to-back frames and never delays a lone message.
	writeBufSize = 64 << 10

	// maxPingEcho bounds the ping payload a node echoes back. Probes
	// carry 8 bytes; anything larger is hostile or corrupt and is not
	// worth amplifying.
	maxPingEcho = 64
)

// Option customizes a Node.
type Option func(*Node)

// WithSendQueueCap sets the per-peer send queue capacity in messages.
func WithSendQueueCap(n int) Option {
	return func(nd *Node) {
		if n > 0 {
			nd.queueCap = n
		}
	}
}

// WithDialTimeout sets the per-attempt dial timeout.
func WithDialTimeout(d time.Duration) Option {
	return func(nd *Node) {
		if d > 0 {
			nd.dialTimeout = d
		}
	}
}

// WithCodec selects the registered wire codec (internal/wire) used to
// encode and decode message frames. It must match the hosted protocol
// node's message types — and the peers' choice — or every message is
// rejected as malformed. NewNode fails if no codec is registered
// under the name, which usually means the binary never imported the
// protocol package whose init registers it.
func WithCodec(name string) Option {
	return func(nd *Node) { nd.codecName = name }
}

// WithTLS enables mutual TLS on every connection using the given
// material (see AutoTLS and LoadTLS). Omitting the option — the
// insecure opt-out used by benchmarks and closed testbeds — keeps the
// transport plaintext.
func WithTLS(t *TLS) Option {
	return func(nd *Node) { nd.tls = t }
}

// WithKeepalive enables connection-level health probing: every
// interval the node pings each replica peer over its outbound
// connection (dialing it if necessary) and tracks the pong's RTT and
// arrival time. A peer silent for longer than timeout is reported to
// the hosted protocol node as an smr.PeerDown event through the
// inbox; a pong after that reports smr.PeerUp. A zero timeout
// defaults to 3x the interval.
func WithKeepalive(interval, timeout time.Duration) Option {
	return func(nd *Node) {
		if interval <= 0 {
			return
		}
		if timeout <= 0 {
			timeout = 3 * interval
		}
		nd.probeInterval = interval
		nd.probeTimeout = timeout
	}
}

// Node hosts one protocol node on a TCP endpoint.
type Node struct {
	id    smr.NodeID
	node  smr.Node
	peers map[smr.NodeID]string

	inbox  chan smr.Event
	ctx    context.Context
	cancel context.CancelFunc

	stopOnce sync.Once
	ln       net.Listener
	start    time.Time

	queueCap    int
	dialTimeout time.Duration

	codecName string
	codec     wire.Codec

	tls           *TLS
	probeInterval time.Duration
	probeTimeout  time.Duration
	limiter       *rateLimiter

	mu      sync.Mutex
	stopped bool
	conns   map[smr.NodeID]*peerConn
	inbound map[net.Conn]struct{}

	// timers is owned by the node goroutine: Set/Cancel run from Step,
	// Deliver from the Run loop.
	timers *smr.TimerSet

	wg sync.WaitGroup
}

// peerConn is one peer's outbound path: a bounded queue drained by a
// writer goroutine, plus the peer's keepalive health record. The
// connection itself is owned by the writer; the mutex only guards the
// handle so Stop (and write-error recovery) can close it from outside.
type peerConn struct {
	id   smr.NodeID
	addr string
	q    *sendQueue

	// pingPending asks the writer to emit one keepalive ping on its
	// next pass (set by the probe loop, cleared by the writer).
	pingPending atomic.Bool

	mu   sync.Mutex
	c    net.Conn
	shut bool

	// Health record. pongLoop writes the observations (lastSeen, rtt);
	// the up/down judgement — and thus every PeerDown/PeerUp event —
	// is made only by the probe loop (judgeHealth), so transitions are
	// totally ordered and the delivered events can never invert.
	// Guarded by hmu; Stats reads it too.
	hmu      sync.Mutex
	lastSeen time.Duration
	rtt      time.Duration
	up       bool
	est      smr.RTTEstimator
}

// markSeen records a pong observation at now with the given round-trip
// time. It deliberately makes no up/down decision: if it also flipped
// state, a pong racing the probe loop's timeout check could publish
// PeerUp before the corresponding PeerDown, leaving consumers'
// level state permanently inverted for a healthy peer.
func (pc *peerConn) markSeen(now, rtt time.Duration) {
	pc.hmu.Lock()
	pc.lastSeen = now
	pc.rtt = rtt
	pc.est.Observe(rtt)
	pc.hmu.Unlock()
}

// healthTransition is judgeHealth's verdict for one probe tick.
type healthTransition int

const (
	healthSteady healthTransition = iota
	healthWentDown
	healthWentUp
)

// judgeHealth makes the probe loop's up/down decision: down when an
// up peer has been silent past its deadline, up when a down peer has
// answered within it. The deadline is per-peer — the RTT estimator
// stretches the configured timeout for peers whose measured round
// trips need it, so one timeout serves both LAN and WAN links — but
// never shrinks below it. Called only from the probe loop, so at most
// one transition is in flight at a time.
func (pc *peerConn) judgeHealth(now, interval, timeout time.Duration) (healthTransition, time.Duration) {
	pc.hmu.Lock()
	defer pc.hmu.Unlock()
	deadline := pc.est.Deadline(interval, timeout)
	silent := now - pc.lastSeen
	switch {
	case pc.up && silent > deadline:
		pc.up = false
		return healthWentDown, silent
	case !pc.up && silent <= deadline:
		pc.up = true
		return healthWentUp, pc.rtt
	}
	return healthSteady, 0
}

// health snapshots the record for Stats.
func (pc *peerConn) health() (up bool, rtt, lastSeen time.Duration) {
	pc.hmu.Lock()
	defer pc.hmu.Unlock()
	return pc.up, pc.rtt, pc.lastSeen
}

// setConn publishes a freshly dialed connection. If shutdown already
// ran — a dial completing concurrently with Stop would otherwise
// publish a connection nobody closes, and a writer stuck in WriteFrame
// on it would hang Stop — the connection is closed instead and the
// writer must exit.
func (pc *peerConn) setConn(c net.Conn) bool {
	pc.mu.Lock()
	if pc.shut {
		pc.mu.Unlock()
		c.Close()
		return false
	}
	pc.c = c
	pc.mu.Unlock()
	return true
}

// closeConn drops the current connection (write-error recovery); the
// writer will redial.
func (pc *peerConn) closeConn() {
	pc.mu.Lock()
	if pc.c != nil {
		pc.c.Close()
		pc.c = nil
	}
	pc.mu.Unlock()
}

// shutdown closes the current connection and latches the peer closed.
func (pc *peerConn) shutdown() {
	pc.mu.Lock()
	pc.shut = true
	if pc.c != nil {
		pc.c.Close()
		pc.c = nil
	}
	pc.mu.Unlock()
}

// NewNode prepares a node bound to listenAddr; peers maps every node
// id (replicas and clients) to its address.
func NewNode(id smr.NodeID, node smr.Node, listenAddr string, peers map[smr.NodeID]string, opts ...Option) (*Node, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		id: id, node: node, peers: peers, ln: ln,
		inbox:       make(chan smr.Event, 4096),
		ctx:         ctx,
		cancel:      cancel,
		queueCap:    DefaultSendQueueCap,
		dialTimeout: DefaultDialTimeout,
		codecName:   DefaultCodec,
		conns:       make(map[smr.NodeID]*peerConn),
		inbound:     make(map[net.Conn]struct{}),
		timers:      smr.NewTimerSet(),
		start:       time.Now(),
	}
	for _, opt := range opts {
		opt(n)
	}
	codec, ok := wire.Lookup(n.codecName)
	if !ok {
		ln.Close()
		cancel()
		return nil, fmt.Errorf("transport: wire codec %q not registered (import the protocol package that provides it)", n.codecName)
	}
	n.codec = codec
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Run starts the accept loop, the keepalive prober (when enabled) and
// the node's event loop; it blocks until Stop.
func (n *Node) Run() {
	n.wg.Add(1)
	go n.acceptLoop()
	if n.probeInterval > 0 {
		n.wg.Add(1)
		go n.probeLoop()
	}
	n.node.Init(n)
	n.node.Step(smr.Start{})
	for {
		select {
		case <-n.ctx.Done():
			n.wg.Wait()
			return
		case ev := <-n.inbox:
			if tf, ok := ev.(smr.TimerFired); ok && !n.timers.Deliver(tf) {
				continue
			}
			n.node.Step(ev)
		}
	}
}

// Submit injects an event (e.g. smr.Invoke) into the node's loop.
func (n *Node) Submit(ev smr.Event) {
	select {
	case n.inbox <- ev:
	case <-n.ctx.Done():
	}
}

// Stop terminates the node: the listener, every inbound connection,
// and every peer writer. It is idempotent: redundant calls (e.g. a
// deferred Stop racing an explicit one) are no-ops.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		n.mu.Lock()
		n.stopped = true
		n.mu.Unlock()
		n.cancel()
		n.ln.Close()
		n.mu.Lock()
		for _, pc := range n.conns {
			pc.shutdown()
		}
		for c := range n.inbound {
			c.Close()
		}
		n.mu.Unlock()
	})
}

// PeerStats reports each peer's current send-queue depth, its
// cumulative drop count (queue evictions plus frames lost to write
// errors or shutdown), and — when keepalive probing is enabled — its
// health record. Peers that were never sent to or probed are absent.
type PeerStats struct {
	Queued int
	Drops  uint64
	// Up reports the prober's current judgement; RTT the last measured
	// probe round trip; LastSeen the Node.Now() timestamp of the last
	// pong. All three are zero-valued when probing is disabled.
	Up       bool
	RTT      time.Duration
	LastSeen time.Duration
}

// Stats aggregates a node's transport and protocol health counters.
type Stats struct {
	// Peers holds per-peer send statistics.
	Peers map[smr.NodeID]PeerStats
	// Intake reports the hosted protocol node's request-admission
	// health (nil when the node does not track intake — e.g. clients).
	Intake *smr.IntakeStats
	// Groups reports the hosted node's group-routing counters (nil
	// when the node does not multiplex groups).
	Groups *smr.GroupStats
	// RateLimit reports the per-source intake limiter's counters (nil
	// when WithIntakeLimit is not configured).
	RateLimit *RateLimitStats
}

// intakeReporter is implemented by hosted nodes that track request
// admission (e.g. xpaxos.Replica). The stats type is smr's, keeping
// this package protocol-agnostic.
type intakeReporter interface {
	IntakeStats() smr.IntakeStats
}

// Stats returns transport and intake statistics for monitoring and the
// bench harness.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	pcs := make(map[smr.NodeID]*peerConn, len(n.conns))
	for id, pc := range n.conns {
		pcs[id] = pc
	}
	n.mu.Unlock()
	peers := make(map[smr.NodeID]PeerStats, len(pcs))
	for id, pc := range pcs {
		depth, drops := pc.q.stats()
		up, rtt, seen := pc.health()
		peers[id] = PeerStats{Queued: depth, Drops: drops, Up: up, RTT: rtt, LastSeen: seen}
	}
	out := Stats{Peers: peers}
	if ir, ok := n.node.(intakeReporter); ok {
		st := ir.IntakeStats()
		out.Intake = &st
	}
	if gr, ok := n.node.(smr.GroupStatsReporter); ok {
		gs := gr.GroupStats()
		out.Groups = &gs
	}
	if n.limiter != nil {
		rs := n.limiter.stats()
		out.RateLimit = &rs
	}
	return out
}

// ---------------------------------------------------------------------------
// Inbound path
// ---------------------------------------------------------------------------

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		if n.tls != nil {
			// Wrap now, handshake in the read loop: a peer stalling its
			// handshake must not block accept.
			conn = tls.Server(conn, n.tls.serverConfig())
		}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			conn.Close()
			continue
		}
		n.inbound[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	// authID is the TLS-authenticated peer identity. Under plaintext it
	// stays -1: any claimed sender is accepted, as before.
	authID := smr.NodeID(-1)
	if n.tls != nil {
		tc, ok := conn.(*tls.Conn)
		if !ok {
			return
		}
		conn.SetDeadline(time.Now().Add(n.dialTimeout))
		if err := tc.HandshakeContext(n.ctx); err != nil {
			return
		}
		conn.SetDeadline(time.Time{})
		certs := tc.ConnectionState().PeerCertificates
		if len(certs) == 0 {
			return
		}
		id, ok := peerIDFromCert(certs[0])
		if !ok {
			return // a valid cluster cert must carry a node identity
		}
		authID = id
	}
	br := bufio.NewReader(conn)
	for {
		// Each frame gets a fresh buffer: the decoded message's byte
		// fields alias it, and the message outlives this iteration.
		kind, payload, err := ReadFrameKind(br, nil)
		if err != nil {
			return
		}
		switch kind {
		case FramePing:
			// Answer on the same connection the ping arrived on, so the
			// probe measures the channel the peer actually uses. The
			// read loop is this conn's only writer.
			if len(payload) > maxPingEcho {
				continue
			}
			if err := WriteFrameKind(conn, FramePong, payload); err != nil {
				return
			}
			continue
		case FramePong:
			continue // pongs belong on outbound conns (pongLoop)
		case FrameMsg, FrameGroupMsg:
		default:
			continue // unknown control frame: ignore for forward compat
		}
		rd := wire.NewReader(payload)
		from, ok := rd.I64()
		if !ok {
			return // malformed header: desynced peer, drop the conn
		}
		if authID >= 0 && smr.NodeID(from) != authID {
			return // claimed sender contradicts the TLS identity
		}
		body := payload[8:]
		var group smr.GroupID
		if kind == FrameGroupMsg {
			g, ok := rd.U32()
			if !ok {
				return // truncated group header: desynced peer
			}
			group = smr.GroupID(g)
			body = payload[12:]
		}
		msg, err := n.codec.Decode(body)
		if err != nil {
			return
		}
		if kind == FrameGroupMsg {
			msg = &smr.GroupMessage{Group: group, Msg: msg}
		}
		if n.limiter != nil && !n.limiter.admit(n.Now(), smr.NodeID(from), msg) {
			continue // shed at intake; counted in Stats.RateLimit
		}
		select {
		case n.inbox <- smr.Recv{From: smr.NodeID(from), Msg: msg}:
		case <-n.ctx.Done():
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Outbound path
// ---------------------------------------------------------------------------

// Send implements smr.Env. It only enqueues: encoding, dialing and
// writing all happen on the peer's writer goroutine, so Send returns in
// O(1) regardless of peer health. Overflow evicts the oldest queued
// message (counted in Stats).
func (n *Node) Send(to smr.NodeID, m smr.Message) {
	pc := n.peer(to)
	if pc == nil {
		return
	}
	pc.q.push(m)
}

// peer returns to's peerConn, starting its writer on first use.
func (n *Node) peer(to smr.NodeID) *peerConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	if pc := n.conns[to]; pc != nil {
		return pc
	}
	addr, ok := n.peers[to]
	if !ok || n.stopped {
		return nil
	}
	pc := &peerConn{id: to, addr: addr, q: newSendQueue(n.queueCap)}
	// The health record starts optimistic: a peer is presumed up until
	// it stays silent past the probe timeout, so booting a cluster
	// does not open with a storm of PeerDown events.
	pc.lastSeen = n.Now()
	pc.up = true
	n.conns[to] = pc
	n.wg.Add(1)
	go n.writeLoop(pc)
	return pc
}

// dialPeer establishes a connection to pc's peer, running the TLS
// handshake when channel security is enabled. A handshake failure is
// a dial failure: the writer backs off and retries.
func (n *Node) dialPeer(d *net.Dialer, pc *peerConn) (net.Conn, error) {
	c, err := d.DialContext(n.ctx, "tcp", pc.addr)
	if err != nil {
		return nil, err
	}
	if n.tls == nil {
		return c, nil
	}
	tc := tls.Client(c, n.tls.clientConfig(pc.id))
	tc.SetDeadline(time.Now().Add(n.dialTimeout))
	if err := tc.HandshakeContext(n.ctx); err != nil {
		c.Close()
		return nil, err
	}
	tc.SetDeadline(time.Time{})
	return tc, nil
}

// writeLoop drains pc's queue onto its connection, (re)dialing as
// needed. A failed dial parks the loop in capped exponential backoff
// while the bounded queue absorbs — and, when full, sheds — new
// traffic. Frames are buffered and flushed when the queue drains, so
// bursts coalesce into few syscalls without delaying a lone message.
// Keepalive pings requested by the probe loop ride the same path —
// including the dial, so probing a peer with no pending traffic still
// establishes (and thereby tests) the channel.
//
// Every exit path accounts for what it abandons: the in-hand message
// already dequeued by pop and any frames accepted by the buffer since
// its last flush are counted as drops, so shutdown mid-backoff never
// loses a message silently.
func (n *Node) writeLoop(pc *peerConn) {
	defer n.wg.Done()
	defer pc.closeConn()
	var bw *bufio.Writer
	// unflushed counts frames accepted by bw since its last successful
	// flush: if the connection fails they die in the buffer, and the
	// drop counter must cover them too ("counted, not silent"). It can
	// overcount — bufio flushes transparently when full, so some may
	// already be on the wire — but never undercounts.
	var unflushed uint64
	buf := wire.New(4 << 10) // reused per-frame encode buffer
	backoff := dialBackoffMin
	dialer := net.Dialer{Timeout: n.dialTimeout}
	fail := func(extra uint64) {
		pc.closeConn()
		bw = nil
		pc.q.countDrops(unflushed + extra)
		unflushed = 0
	}
	for {
		m, ok := pc.q.pop()
		wantPing := pc.pingPending.Load()
		if !ok && !wantPing {
			if bw != nil {
				if err := bw.Flush(); err != nil {
					fail(0)
				} else {
					unflushed = 0
				}
			}
			select {
			case <-pc.q.notify:
				continue
			case <-n.ctx.Done():
				pc.q.countDrops(unflushed)
				return
			}
		}
		// inHand counts the dequeued message through the shutdown
		// paths below: once popped it exists nowhere but here, so an
		// exit before it reaches the buffer must count it.
		var inHand uint64
		if ok {
			inHand = 1
		}
		// Ensure a live connection; the dequeued message waits through
		// backoff (newer messages accumulate behind it, oldest-first
		// eviction applies if the peer stays down).
		for bw == nil {
			c, err := n.dialPeer(&dialer, pc)
			if err != nil {
				if n.ctx.Err() != nil {
					pc.q.countDrops(unflushed + inHand)
					return
				}
				select {
				case <-time.After(backoff):
				case <-n.ctx.Done():
					pc.q.countDrops(unflushed + inHand)
					return
				}
				if backoff *= 2; backoff > dialBackoffMax {
					backoff = dialBackoffMax
				}
				continue
			}
			backoff = dialBackoffMin
			if !pc.setConn(c) {
				pc.q.countDrops(unflushed + inHand)
				return // Stop won the race; the conn is closed
			}
			bw = bufio.NewWriterSize(c, writeBufSize)
			if n.probeInterval > 0 {
				// The pong reader lives exactly as long as this conn.
				n.wg.Add(1)
				go n.pongLoop(pc, c)
			}
		}
		if ok {
			buf.Reset()
			buf.I64(int64(n.id))
			kind, inner := FrameMsg, m
			if gm, grouped := m.(*smr.GroupMessage); grouped {
				kind = FrameGroupMsg
				buf.U32(uint32(gm.Group))
				inner = gm.Msg
			}
			if err := n.codec.Append(buf, inner); err != nil {
				pc.q.countDrops(1) // not encodable: shed, but count
			} else if err := WriteFrameKind(bw, kind, buf.Done()); err != nil {
				if errors.Is(err, ErrFrameTooLarge) {
					// Rejected before any bytes hit the stream: the
					// connection is still in sync, shed just this message.
					pc.q.countDrops(1)
				} else {
					fail(1)
					continue
				}
			} else {
				unflushed++
			}
		}
		if wantPing {
			pc.pingPending.Store(false)
			var ts [8]byte
			binary.LittleEndian.PutUint64(ts[:], uint64(n.Now()))
			if err := WriteFrameKind(bw, FramePing, ts[:]); err != nil {
				fail(0)
				continue
			}
		}
		if pc.q.empty() {
			if err := bw.Flush(); err != nil {
				fail(0)
			} else {
				unflushed = 0
			}
		}
	}
}

// pongLoop drains keepalive replies from an outbound connection,
// feeding the peer's health record. It exits with the connection: any
// read error — the writer replacing the conn after a write failure,
// or Stop closing it — ends the loop.
func (n *Node) pongLoop(pc *peerConn, c net.Conn) {
	defer n.wg.Done()
	br := bufio.NewReaderSize(c, 512)
	var buf []byte
	for {
		kind, payload, err := ReadFrameKind(br, buf)
		if err != nil {
			return
		}
		buf = payload
		if kind != FramePong || len(payload) != 8 {
			continue
		}
		now := n.Now()
		rtt := now - time.Duration(binary.LittleEndian.Uint64(payload))
		if rtt < 0 {
			rtt = 0 // a peer echoing garbage must not corrupt the record
		}
		pc.markSeen(now, rtt)
	}
}

// probeLoop drives keepalive probing: every interval it asks each
// replica peer's writer to emit one ping (which dials the peer if no
// traffic ever has) and turns silence past the timeout into an
// smr.PeerDown event, recovery into smr.PeerUp. It is the sole
// producer of health events, so the delivered transition sequence
// always alternates and matches the health record's final state.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.probeInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-tick.C:
		}
		for id := range n.peers {
			if id == n.id || id.IsClient() {
				continue // clients come and go; only replicas are probed
			}
			pc := n.peer(id)
			if pc == nil {
				return // node stopped
			}
			switch verdict, d := pc.judgeHealth(n.Now(), n.probeInterval, n.probeTimeout); verdict {
			case healthWentDown:
				n.deliverHealth(smr.PeerDown{Peer: id, LastSeen: d})
			case healthWentUp:
				n.deliverHealth(smr.PeerUp{Peer: id, RTT: d})
			}
			pc.pingPending.Store(true)
			pc.q.kick()
		}
	}
}

// deliverHealth injects a health event into the node's loop. Like
// timer firings, health transitions are never dropped on a full inbox:
// they are rare, and losing a PeerDown would leave the protocol blind
// to exactly the condition probing exists to surface.
func (n *Node) deliverHealth(ev smr.Event) {
	select {
	case n.inbox <- ev:
	case <-n.ctx.Done():
	}
}

// ---------------------------------------------------------------------------
// smr.Env
// ---------------------------------------------------------------------------

// ID implements smr.Env.
func (n *Node) ID() smr.NodeID { return n.id }

// Now implements smr.Env.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// SetTimer implements smr.Env. TimerFired events are never dropped on
// a full inbox (the firing goroutine waits for space or shutdown):
// only delivery clears the timer's bookkeeping.
func (n *Node) SetTimer(d time.Duration, kind string) smr.TimerID {
	return n.timers.Set(d, kind, func(tf smr.TimerFired) {
		select {
		case n.inbox <- tf:
		case <-n.ctx.Done():
		}
	})
}

// CancelTimer implements smr.Env.
func (n *Node) CancelTimer(id smr.TimerID) { n.timers.Cancel(id) }

// Defer implements smr.Env: work runs on its own goroutine and the
// completion re-enters the node's loop as an smr.Async event. Like
// timers, completions are never dropped on a full inbox — protocol
// state machines track deferred work in flight, and losing a
// completion would strand that bookkeeping — so the send blocks until
// the loop drains it or the node stops.
func (n *Node) Defer(kind string, work func(), apply func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		work()
		select {
		case n.inbox <- smr.Async{Kind: kind, Apply: apply}:
		case <-n.ctx.Done():
		}
	}()
}

var _ smr.Env = (*Node)(nil)

// ParsePeers parses "0=host:port,1=host:port,..." into a peer map.
func ParsePeers(s string) (map[smr.NodeID]string, error) {
	peers := make(map[smr.NodeID]string)
	if s == "" {
		return peers, nil
	}
	var id int
	var addr string
	for _, part := range splitComma(s) {
		if _, err := fmt.Sscanf(part, "%d=%s", &id, &addr); err != nil {
			return nil, fmt.Errorf("transport: bad peer entry %q", part)
		}
		peers[smr.NodeID(id)] = addr
	}
	return peers, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
