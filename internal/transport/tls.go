package transport

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/smr"
)

// Channel security. Every connection between nodes can run mutual TLS
// 1.3: each node presents a certificate binding its NodeID (as a DNS
// SAN, see PeerName) to an Ed25519 key, issued by a cluster CA. The
// dialer pins the expected peer identity via ServerName, the listener
// requires and verifies a client certificate, and the read loop
// rejects frames whose claimed sender differs from the authenticated
// identity — so a replica cannot impersonate another replica or a
// client at the transport layer, closing the spoofing hole the
// plaintext transport leaves open.
//
// Certificates come from two provisioning paths:
//
//   - AutoTLS derives the CA and every node certificate
//     deterministically from the Ed25519 identity keys the crypto
//     suite already holds. A cluster sharing a -seed gets working
//     mutual TLS with zero files — the same trust model as the seeded
//     signing keys (the seed is the cluster secret). This is the
//     dev/bench path.
//   - LoadTLS reads PEM cert/key/CA files provisioned externally
//     (WriteCertFiles emits a compatible set). This is the deployment
//     path: keys never need to appear on more than their own machine.

// peerNamePrefix prefixes the DNS SAN that carries a node's identity.
const peerNamePrefix = "xft-node-"

// PeerName returns the TLS identity name embedded in node id's
// certificate, e.g. "xft-node-3". The dialer sets it as ServerName so
// a certificate for one node never authenticates another.
func PeerName(id smr.NodeID) string {
	return peerNamePrefix + strconv.Itoa(int(id))
}

// peerIDFromCert extracts the NodeID bound by cert's identity SAN. A
// certificate must carry exactly one non-negative identity: a
// negative id would collide with the read loop's plaintext sentinel
// (disabling the sender check), and multiple identity SANs would make
// one certificate speak for several nodes — both rejected, so only
// the deterministic single-identity shape AutoTLS/WriteCertFiles
// emits is authenticated (an external CA must match it).
func peerIDFromCert(cert *x509.Certificate) (smr.NodeID, bool) {
	id, found := smr.NodeID(0), false
	for _, name := range cert.DNSNames {
		rest, ok := strings.CutPrefix(name, peerNamePrefix)
		if !ok {
			continue
		}
		v, err := strconv.Atoi(rest)
		if err != nil || v < 0 {
			return 0, false
		}
		if found {
			return 0, false // multi-identity certificate
		}
		id, found = smr.NodeID(v), true
	}
	return id, found
}

// TLS is a node's channel-security material: its own certificate and
// the CA pool it trusts for peers. A nil *TLS means plaintext.
type TLS struct {
	cert tls.Certificate
	pool *x509.CertPool
}

// Certificate validity. Fixed timestamps keep AutoTLS deterministic:
// the same seed yields byte-identical certificates on every node, so
// no cert distribution step is needed.
var (
	certNotBefore = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	certNotAfter  = time.Date(2120, 1, 1, 0, 0, 0, 0, time.UTC)
)

// caKeyFromSuite derives the cluster CA key from the suite's node-0
// identity key. Any holder of the seed can compute it — exactly the
// trust model of the seeded suite itself.
func caKeyFromSuite(suite *crypto.Ed25519Suite) (ed25519.PrivateKey, error) {
	base := suite.PrivateKey(0)
	if base == nil {
		return nil, fmt.Errorf("transport: suite has no key for node 0")
	}
	seed := sha256.Sum256(append([]byte("xft-tls-ca-v1"), base.Seed()...))
	return ed25519.NewKeyFromSeed(seed[:]), nil
}

func caTemplate() *x509.Certificate {
	return &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "xft-cluster-ca"},
		NotBefore:             certNotBefore,
		NotAfter:              certNotAfter,
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
}

func nodeTemplate(id smr.NodeID) *x509.Certificate {
	return &x509.Certificate{
		SerialNumber: big.NewInt(int64(id) + 2),
		Subject:      pkix.Name{CommonName: PeerName(id)},
		DNSNames:     []string{PeerName(id)},
		NotBefore:    certNotBefore,
		NotAfter:     certNotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
}

// clusterCA builds the deterministic CA certificate for the suite.
func clusterCA(suite *crypto.Ed25519Suite) (caDER []byte, caKey ed25519.PrivateKey, err error) {
	caKey, err = caKeyFromSuite(suite)
	if err != nil {
		return nil, nil, err
	}
	tmpl := caTemplate()
	caDER, err = x509.CreateCertificate(rand.Reader, tmpl, tmpl, caKey.Public(), caKey)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: create CA cert: %w", err)
	}
	return caDER, caKey, nil
}

// issueNodeCert signs a certificate for id's suite identity key.
func issueNodeCert(caDER []byte, caKey ed25519.PrivateKey, suite *crypto.Ed25519Suite, id smr.NodeID) ([]byte, ed25519.PrivateKey, error) {
	priv := suite.PrivateKey(crypto.NodeID(id))
	if priv == nil {
		return nil, nil, fmt.Errorf("transport: suite has no key for node %d", id)
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, nil, err
	}
	der, err := x509.CreateCertificate(rand.Reader, nodeTemplate(id), caCert, priv.Public(), caKey)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: create cert for node %d: %w", id, err)
	}
	return der, priv, nil
}

// AutoTLS builds mutual-TLS material for node id from the suite's
// deterministic Ed25519 identity keys: a cluster CA derived from the
// seed and a node certificate signed by it. Every node of a cluster
// sharing the seed derives the same CA, so the certificates verify
// cross-node without any file exchange.
func AutoTLS(suite *crypto.Ed25519Suite, id smr.NodeID) (*TLS, error) {
	caDER, caKey, err := clusterCA(suite)
	if err != nil {
		return nil, err
	}
	der, priv, err := issueNodeCert(caDER, caKey, suite, id)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, err
	}
	pool.AddCert(caCert)
	return &TLS{
		cert: tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv},
		pool: pool,
	}, nil
}

// LoadTLS reads a node's certificate, key and CA bundle from PEM
// files (the deployment provisioning path; WriteCertFiles emits a
// compatible set).
func LoadTLS(certFile, keyFile, caFile string) (*TLS, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("transport: load key pair: %w", err)
	}
	caPEM, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("transport: read CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, fmt.Errorf("transport: no certificates in %s", caFile)
	}
	return &TLS{cert: cert, pool: pool}, nil
}

// WriteCertFiles emits the AutoTLS material for the given ids as PEM
// files under dir: ca.pem, and node-<id>.pem / node-<id>-key.pem per
// node. It backs the cmd-level gen-certs helper, giving deployments a
// starting set they can re-issue from real keys later.
func WriteCertFiles(suite *crypto.Ed25519Suite, ids []smr.NodeID, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	caDER, caKey, err := clusterCA(suite)
	if err != nil {
		return err
	}
	caPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: caDER})
	if err := os.WriteFile(filepath.Join(dir, "ca.pem"), caPEM, 0o644); err != nil {
		return err
	}
	for _, id := range ids {
		der, priv, err := issueNodeCert(caDER, caKey, suite, id)
		if err != nil {
			return err
		}
		certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
		keyDER, err := x509.MarshalPKCS8PrivateKey(priv)
		if err != nil {
			return err
		}
		keyPEM := pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: keyDER})
		base := filepath.Join(dir, fmt.Sprintf("node-%d", id))
		if err := os.WriteFile(base+".pem", certPEM, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(base+"-key.pem", keyPEM, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// ResolveTLS resolves the channel-security flag triad shared by the
// cmd tools: explicit PEM files win, insecure selects plaintext (nil),
// and the default derives the cluster's mutual-TLS material from the
// suite's deterministic seed — zero-config within a shared-seed
// deployment.
func ResolveTLS(suite *crypto.Ed25519Suite, id smr.NodeID, insecure bool, certFile, keyFile, caFile string) (*TLS, error) {
	switch {
	case certFile != "" || keyFile != "" || caFile != "":
		if certFile == "" || keyFile == "" || caFile == "" {
			return nil, fmt.Errorf("transport: -tls-cert, -tls-key and -tls-ca must be given together")
		}
		return LoadTLS(certFile, keyFile, caFile)
	case insecure:
		return nil, nil
	default:
		return AutoTLS(suite, id)
	}
}

// serverConfig is the listener-side TLS configuration: present our
// certificate, require and verify a peer certificate against the
// cluster CA.
func (t *TLS) serverConfig() *tls.Config {
	return &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{t.cert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    t.pool,
	}
}

// clientConfig is the dialer-side TLS configuration for connecting to
// peer: the ServerName pins the peer's identity, so a valid cluster
// certificate for any *other* node does not authenticate it.
func (t *TLS) clientConfig(peer smr.NodeID) *tls.Config {
	return &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{t.cert},
		RootCAs:      t.pool,
		ServerName:   PeerName(peer),
	}
}
