package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/xft-consensus/xft/internal/smr"
)

// Per-source intake rate limiting (ROADMAP: overload protection at the
// transport edge). A replica under client overload should shed excess
// load before decoding and signature-verifying it in the protocol —
// and when it sheds, it must prefer keeping retransmissions: dropping
// a client's re-sent request (xpaxos MsgResend, Algorithm 4) turns a
// transient overload into a view change, because the client escalates
// to suspecting the primary, while dropping a fresh request merely
// delays one new operation by a retransmission timeout.
//
// The limiter is a classic token bucket per client source, with a
// twist that encodes the retransmission priority: fresh requests may
// only spend the bucket down to zero, while retransmissions may
// overdraw it down to -burst. The overdraft band [-burst, 0) is
// therefore reserved capacity that only retransmissions can consume —
// under sustained overload fresh traffic is shed first, and a client
// retrying a stuck request still gets through. Replica-to-replica
// traffic is never limited: shedding protocol votes or view-change
// messages would destabilize exactly the machinery that resolves
// overload.

// maxLimiterSources caps the tracked-source map. Past the cap new
// sources are admitted unconditionally (fail open): the cap exists to
// bound memory against client-ID churn, not to act as an admission
// policy of its own.
const maxLimiterSources = 4096

// WithIntakeLimit enables per-source intake rate limiting: each client
// source may deliver perSourcePerSec messages per second sustained,
// with bursts up to burst messages. When a source exceeds its rate the
// transport sheds its frames after decode but before delivery to the
// protocol node, prioritizing retransmissions (smr.IsRetransmit) over
// fresh load — see the package comments on ratelimit.go. Non-positive
// values disable the limiter.
func WithIntakeLimit(perSourcePerSec float64, burst int) Option {
	return func(nd *Node) {
		if perSourcePerSec <= 0 || burst <= 0 {
			return
		}
		nd.limiter = &rateLimiter{
			rate:    perSourcePerSec,
			burst:   float64(burst),
			sources: make(map[smr.NodeID]*tokenBucket),
		}
	}
}

// RateLimitStats snapshots the intake limiter's counters.
type RateLimitStats struct {
	// Sources is the number of distinct client sources tracked.
	Sources int
	// Admitted counts messages that passed the limiter.
	Admitted uint64
	// ShedFresh counts fresh (non-retransmission) messages shed.
	ShedFresh uint64
	// ShedRetransmit counts retransmissions shed — nonzero only when a
	// source exhausts even the overdraft band reserved for them.
	ShedRetransmit uint64
}

// tokenBucket is one source's budget. tokens ranges over
// [-burst, burst]: the positive half is spendable by anyone, the
// negative half only by retransmissions.
type tokenBucket struct {
	tokens float64
	last   time.Duration
}

type rateLimiter struct {
	rate  float64 // tokens per second per source
	burst float64

	mu      sync.Mutex
	sources map[smr.NodeID]*tokenBucket

	admitted       atomic.Uint64
	shedFresh      atomic.Uint64
	shedRetransmit atomic.Uint64
}

// admit charges one token to from's bucket and reports whether the
// message may proceed. Called from read loops with the transport's
// monotonic clock; concurrent calls for the same source serialize on
// the limiter mutex.
func (rl *rateLimiter) admit(now time.Duration, from smr.NodeID, m smr.Message) bool {
	if !from.IsClient() {
		return true // replica traffic is never limited
	}
	retransmit := smr.IsRetransmit(m)
	rl.mu.Lock()
	b := rl.sources[from]
	if b == nil {
		if len(rl.sources) >= maxLimiterSources {
			rl.mu.Unlock()
			rl.admitted.Add(1)
			return true // over the tracking cap: fail open
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.sources[from] = b
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += rl.rate * dt.Seconds()
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
	}
	b.last = now
	floor := 0.0
	if retransmit {
		floor = -rl.burst
	}
	ok := b.tokens >= floor+1
	if ok {
		b.tokens--
	}
	rl.mu.Unlock()
	switch {
	case ok:
		rl.admitted.Add(1)
	case retransmit:
		rl.shedRetransmit.Add(1)
	default:
		rl.shedFresh.Add(1)
	}
	return ok
}

func (rl *rateLimiter) stats() RateLimitStats {
	rl.mu.Lock()
	n := len(rl.sources)
	rl.mu.Unlock()
	return RateLimitStats{
		Sources:        n,
		Admitted:       rl.admitted.Load(),
		ShedFresh:      rl.shedFresh.Load(),
		ShedRetransmit: rl.shedRetransmit.Load(),
	}
}
