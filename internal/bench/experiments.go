package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/core"
	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/netsim"
	"github.com/xft-consensus/xft/internal/reliability"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// cores models the paper's 8-vCPU instances: cryptographic work
// parallelizes across cores, and Figure 8 reports CPU usage in
// percent-of-one-core units (up to 800%).
const cores = 8

// costModel returns the per-core cost model.
func costModel() crypto.CostModel {
	cm := crypto.DefaultCostModel()
	cm.SignCost /= cores
	cm.VerifyCost /= cores
	cm.MACCost /= cores
	cm.DigestCost /= cores
	cm.PerByteCost /= cores
	cm.DispatchCost /= cores
	return cm
}

func init() {
	// The cluster builder reads the default cost model through
	// netsim.Config; Build sets it directly. (Hook kept for clarity.)
	_ = costModel
}

// Quick controls experiment scale: true gives CI-sized runs (seconds);
// false reproduces the full curves (minutes).
type Scale struct {
	Quick bool
}

func (s Scale) clientCounts() []int {
	if s.Quick {
		return []int{1, 50, 200, 600}
	}
	return []int{1, 25, 100, 250, 500, 1000, 1750, 2500}
}

func (s Scale) egressMBps() float64 {
	if s.Quick {
		return 3 // saturate with fewer simulated clients
	}
	return 30
}

func (s Scale) warmup() time.Duration {
	if s.Quick {
		return 1500 * time.Millisecond
	}
	return 3 * time.Second
}

func (s Scale) measure() time.Duration {
	if s.Quick {
		return 3 * time.Second
	}
	return 10 * time.Second
}

// Fig7 reproduces Figure 7: latency vs throughput for XPaxos, Paxos,
// PBFT and Zyzzyva. Variant "a" is the 1/0 benchmark at t=1, "b" the
// 4/0 benchmark at t=1, "c" the 1/0 benchmark at t=2.
func Fig7(w io.Writer, variant string, sc Scale) {
	t := 1
	reqSize := 1024
	switch variant {
	case "b":
		reqSize = 4096
	case "c":
		t = 2
	}
	fmt.Fprintf(w, "Figure 7%s: %d/0 microbenchmark, t=%d (latency vs throughput)\n", variant, reqSize/1024, t)
	for _, proto := range AllProtocols {
		spec := Spec{
			Protocol: proto, T: t, App: NullApp,
			ReqSize: reqSize, EgressMBps: sc.egressMBps(), Seed: 42,
		}
		points := Sweep(spec, microOp(reqSize), sc.clientCounts(), sc.warmup(), sc.measure())
		fmt.Fprint(w, FormatPoints(points))
	}
}

// PipelineComparison measures the common-case throughput of XPaxos at
// n=3 on the simulated WAN with the lock-step window (PipelineWindow=1,
// one batch must commit before the next is proposed) versus the
// pipelined default. It returns both points so benchmarks can report
// the speedup, and renders them to w.
func PipelineComparison(w io.Writer, sc Scale) (lockstep, pipelined Point) {
	clients := sc.clientCounts()[len(sc.clientCounts())-1]
	base := Spec{
		Protocol: XPaxos, T: 1, App: NullApp, ReqSize: 1024,
		Clients: clients, EgressMBps: sc.egressMBps(), Seed: 7,
	}
	lockSpec := base
	lockSpec.PipelineWindow = 1
	lockstep = RunPoint(lockSpec, microOp(base.ReqSize), sc.warmup(), sc.measure())
	pipelined = RunPoint(base, microOp(base.ReqSize), sc.warmup(), sc.measure())
	fmt.Fprintf(w, "XPaxos common case, n=3, %d clients, 1/0 benchmark\n", clients)
	fmt.Fprintf(w, "lock-step (window=1): %7.2f kops/s  latency %6.1f ms\n",
		lockstep.ThroughputKops, lockstep.LatencyMs)
	fmt.Fprintf(w, "pipelined (default):  %7.2f kops/s  latency %6.1f ms\n",
		pipelined.ThroughputKops, pipelined.LatencyMs)
	if lockstep.ThroughputKops > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", pipelined.ThroughputKops/lockstep.ThroughputKops)
	}
	return lockstep, pipelined
}

// Fig8 reproduces Figure 8: CPU usage at the most loaded node (the
// primary) versus throughput, for the 1/0 and 4/0 benchmarks at peak
// load.
func Fig8(w io.Writer, sc Scale) {
	fmt.Fprintln(w, "Figure 8: CPU usage (percent of one core; 8-core nodes) at peak throughput")
	peak := sc.clientCounts()[len(sc.clientCounts())-1]
	for _, bench := range []int{1024, 4096} {
		fmt.Fprintf(w, "--- %d/0 benchmark ---\n", bench/1024)
		for _, proto := range AllProtocols {
			spec := Spec{Protocol: proto, T: 1, App: NullApp, ReqSize: bench,
				EgressMBps: sc.egressMBps(), Clients: peak, Seed: 99}
			p := RunPoint(spec, microOp(bench), sc.warmup(), sc.measure())
			fmt.Fprintf(w, "%-9s throughput=%7.2f kops/s  cpu=%6.1f%%\n",
				proto, p.ThroughputKops, p.PrimaryCPU*100*cores)
		}
	}
}

// Fig9 reproduces Figure 9: XPaxos throughput under a sequence of
// crashes with recovery, showing sub-10-second view changes. The
// timeline is compressed (the paper crashes at 180/300/420 s with 20 s
// recoveries; we crash at 60/130/200 s of a 260 s run to keep the
// simulation small — Δ and all protocol timeouts are unchanged, so
// view-change durations are directly comparable).
func Fig9(w io.Writer, sc Scale) {
	clients := 300
	if sc.Quick {
		clients = 100
	}
	spec := Spec{Protocol: XPaxos, T: 1, App: NullApp, ReqSize: 1024,
		EgressMBps: sc.egressMBps(), Clients: clients, Seed: 7}
	c := Build(spec)

	total := 300 * time.Second
	buckets := make([]uint64, int(total/time.Second)+1)
	for ci := 0; ci < c.NumClients(); ci++ {
		ci := ci
		c.SetOnCommit(ci, func(op, rep []byte, lat time.Duration) {
			sec := int(c.Net.Now() / time.Second)
			if sec >= 0 && sec < len(buckets) {
				buckets[sec]++
			}
			c.Invoke(ci, make([]byte, 1024))
		})
	}
	c.Net.At(0, func() {
		for ci := 0; ci < c.NumClients(); ci++ {
			c.Invoke(ci, make([]byte, 1024))
		}
	})
	// Fault schedule: follower VA, then primary CA, then JP (paper's
	// order), each recovering 20 s later.
	schedule := []struct {
		at      time.Duration
		replica smr.NodeID
	}{
		{60 * time.Second, 1},  // VA (follower of view 0)
		{130 * time.Second, 0}, // CA (primary)
		{200 * time.Second, 2}, // JP
	}
	for _, ev := range schedule {
		ev := ev
		c.Net.At(ev.at, func() { c.Net.Crash(ev.replica) })
		c.Net.At(ev.at+20*time.Second, func() { c.Net.Recover(ev.replica) })
	}
	c.Net.RunUntil(total)

	fmt.Fprintln(w, "Figure 9: XPaxos under faults (throughput per second; crashes at 60s/130s/200s, 20s recovery)")
	// Report per-5s buckets to keep the series compact, plus gap
	// analysis: the longest zero-throughput stretch after each crash.
	for sec := 0; sec < len(buckets)-1; sec += 5 {
		var sum uint64
		for k := sec; k < sec+5 && k < len(buckets); k++ {
			sum += buckets[k]
		}
		fmt.Fprintf(w, "t=%3ds  %8.2f kops/s\n", sec, float64(sum)/5/1000)
	}
	for _, ev := range schedule {
		gap := 0
		start := int(ev.at/time.Second) + 1
		for sec := start; sec < len(buckets); sec++ {
			if buckets[sec] == 0 {
				gap++
			} else {
				break
			}
		}
		fmt.Fprintf(w, "crash at %3ds: service interruption ≈ %ds (paper: < 10 s)\n", int(ev.at/time.Second), gap)
	}
}

// Fig10 reproduces Figure 10: the ZooKeeper macro-benchmark — 1 kB
// writes against the zk store replicated with each protocol, Zab
// included.
func Fig10(w io.Writer, sc Scale) {
	fmt.Fprintln(w, "Figure 10: ZooKeeper macro-benchmark (1 kB writes, t=1)")
	protos := append(append([]Protocol{}, AllProtocols...), Zab)
	for _, proto := range protos {
		spec := Spec{Protocol: proto, T: 1, App: ZKApp, ReqSize: 1024,
			EgressMBps: sc.egressMBps(), Seed: 10}
		points := Sweep(spec, zkWriteOp(1024), sc.clientCounts(), sc.warmup(), sc.measure())
		fmt.Fprint(w, FormatPoints(points))
	}
}

// Table1 prints the fault-tolerance guarantee matrix.
func Table1(w io.Writer) {
	fmt.Fprint(w, core.FormatTable1(3))
	fmt.Fprintln(w)
	fmt.Fprint(w, core.FormatTable1(5))
}

// Table2 prints the synchronous-group rotation for t=1.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: synchronous group combinations (t = 1)")
	fmt.Fprintf(w, "%-6s %-10s %-10s %-10s\n", "view", "primary", "follower", "passive")
	for v := smr.View(0); v < 6; v++ {
		g := xpaxos.SyncGroup(3, 1, v)
		p := xpaxos.Passive(3, 1, v)
		fmt.Fprintf(w, "%-6d s%-9d s%-9d s%-9d\n", v, g[0], g[1], p[0])
	}
}

// Table3Report regenerates Table 3 by sampling the WAN model's RTT
// distributions (tails enabled) and prints avg/99.99%/99.999%/max per
// measured region pair, plus the derived Δ.
func Table3Report(w io.Writer, sc Scale) {
	samples := 2_000_000
	if sc.Quick {
		samples = 300_000
	}
	model := EC2Model(map[smr.NodeID]int{}, true)
	net := netsim.New(netsim.Config{Seed: 123})
	fmt.Fprintf(w, "Table 3: simulated RTTs across EC2 regions (ms, avg / 99.99%% / 99.999%% / max; %d pings per pair)\n", samples)
	pairs := make([][2]int, 0)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	for _, pr := range pairs {
		avg, q1, q2, max := model.MeasureRTTQuantiles(net.Engine().Rand(), pr[0], pr[1], samples)
		ref := Table3[[2]int{min(pr[0], pr[1]), max2(pr[0], pr[1])}]
		if ref.AvgRTT == 0 {
			ref = Table3[[2]int{max2(pr[0], pr[1]), min(pr[0], pr[1])}]
		}
		fmt.Fprintf(w, "%-14s - %-14s  %5d / %5d / %6d / %6d   (paper: %d / %d / %d / %d)\n",
			RegionNames[pr[0]], RegionNames[pr[1]],
			avg.Milliseconds(), q1.Milliseconds(), q2.Milliseconds(), max.Milliseconds(),
			ref.AvgRTT.Milliseconds(), ref.P9999.Milliseconds(), ref.P99999.Milliseconds(), ref.MaxRTT.Milliseconds())
	}
	fmt.Fprintf(w, "derived Δ = %v (paper: 1.25s)\n", DeltaFromTable3())
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Tables5to8 prints the Appendix D reliability tables.
func Tables5to8(w io.Writer) {
	fmt.Fprint(w, reliability.ConsistencyTable(1))
	fmt.Fprintln(w)
	fmt.Fprint(w, reliability.ConsistencyTable(2))
	fmt.Fprintln(w)
	fmt.Fprint(w, reliability.AvailabilityTable(1))
	fmt.Fprintln(w)
	fmt.Fprint(w, reliability.AvailabilityTable(2))
	fmt.Fprintln(w)
	fmt.Fprint(w, reliability.FormatExamples())
}

// PatternReport prints the common-case message counts per protocol for
// a single unbatched request (Figures 2 and 6).
func PatternReport(w io.Writer) {
	fmt.Fprintln(w, "Figures 2 & 6: common-case message counts for one request (t = 1, batching off)")
	protos := append(append([]Protocol{}, AllProtocols...), Zab)
	for _, proto := range protos {
		counts := patternCounts(proto)
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "%-9s ", proto)
		for _, k := range keys {
			fmt.Fprintf(w, "%s=%d ", k, counts[k])
		}
		fmt.Fprintln(w)
	}
}

// patternCounts runs one request to completion and returns the message
// counts by type (excluding lazy replication, which is asynchronous
// background traffic).
func patternCounts(proto Protocol) map[string]uint64 {
	spec := Spec{Protocol: proto, T: 1, App: NullApp, ReqSize: 16, BatchSize: 1, Seed: 3}
	c := Build(spec)
	done := false
	c.SetOnCommit(0, func(op, rep []byte, lat time.Duration) { done = true })
	c.Net.At(0, func() { c.Invoke(0, kv.GetOp("x")) })
	for i := 0; i < 10000 && !done; i++ {
		if !c.Net.Engine().Step() {
			break
		}
	}
	return c.Net.MessageCounts()
}
