// Package bench is the experiment harness: it reconstructs every table
// and figure of the XFT paper's evaluation (Section 5 and Appendix D)
// on top of the WAN simulator, with all five protocols (XPaxos, Paxos,
// PBFT, Zyzzyva, Zab) built in this repository.
package bench

import (
	"time"

	"github.com/xft-consensus/xft/internal/netsim"
	"github.com/xft-consensus/xft/internal/smr"
)

// Region indices. The first six regions carry the paper's measured
// Table 3 profiles; OR and SG (used only by the t=2 experiment,
// Section 5.2) carry estimated profiles, marked below.
const (
	VA = iota // US East (Virginia)
	CA        // US West 1 (California)
	EU        // Europe (Ireland)
	JP        // Tokyo
	AU        // Sydney
	BR        // São Paulo
	OR        // US West 2 (Oregon)     — estimated
	SG        // Singapore              — estimated
	numRegions
)

// RegionNames maps region indices to labels.
var RegionNames = []string{"US-East(VA)", "US-West-1(CA)", "Europe(EU)", "Tokyo(JP)", "Sydney(AU)", "SaoPaulo(BR)", "US-West-2(OR)", "Singapore(SG)"}

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// profile builds a LinkProfile from Table 3's four columns (ms).
func profile(avg, p9999, p99999, max int) netsim.LinkProfile {
	return netsim.LinkProfile{AvgRTT: ms(avg), P9999: ms(p9999), P99999: ms(p99999), MaxRTT: ms(max)}
}

// Table3 holds the paper's measured EC2 RTT profiles (Table 3:
// average / 99.99% / 99.999% / maximum, in ms), plus estimated entries
// for OR and SG.
var Table3 = map[[2]int]netsim.LinkProfile{
	{VA, CA}: profile(88, 1097, 82190, 166390),
	{VA, EU}: profile(92, 1112, 85649, 169749),
	{VA, JP}: profile(179, 1226, 81177, 165277),
	{VA, AU}: profile(268, 1372, 95074, 179174),
	{VA, BR}: profile(146, 1214, 85434, 169534),
	{CA, EU}: profile(174, 1184, 1974, 15467),
	{CA, JP}: profile(120, 1133, 1180, 6210),
	{CA, AU}: profile(186, 1209, 6354, 51646),
	{CA, BR}: profile(207, 1252, 90980, 169080),
	{EU, JP}: profile(287, 1310, 1397, 4798),
	{EU, AU}: profile(342, 1375, 3154, 11052),
	{EU, BR}: profile(233, 1257, 1382, 9188),
	{JP, AU}: profile(137, 1149, 1414, 5228),
	{JP, BR}: profile(394, 2496, 11399, 94775),
	{AU, BR}: profile(392, 1496, 2134, 10983),
	// Estimated profiles for the t=2 deployment (not in Table 3).
	{OR, VA}: profile(70, 1100, 40000, 160000),
	{OR, CA}: profile(22, 1050, 1100, 6000),
	{OR, EU}: profile(150, 1180, 2000, 15000),
	{OR, JP}: profile(100, 1130, 1200, 6200),
	{OR, AU}: profile(160, 1200, 6000, 50000),
	{OR, BR}: profile(190, 1250, 80000, 160000),
	{OR, SG}: profile(165, 1210, 2200, 16000),
	{SG, VA}: profile(230, 1260, 1400, 9000),
	{SG, CA}: profile(175, 1190, 2000, 15000),
	{SG, EU}: profile(160, 1190, 2100, 15000),
	{SG, JP}: profile(70, 1100, 1200, 5000),
	{SG, AU}: profile(90, 1120, 1400, 5200),
	{SG, BR}: profile(330, 1370, 3000, 11000),
}

// intraRegion is the profile for node pairs inside one datacenter.
var intraRegion = netsim.LinkProfile{AvgRTT: 600 * time.Microsecond, P9999: 10 * time.Millisecond, P99999: 30 * time.Millisecond, MaxRTT: 100 * time.Millisecond}

// EC2Model builds the latency model for a deployment: region maps each
// node to its region. Tail spikes are disabled for throughput
// experiments (they would dominate short simulated runs, see
// DESIGN.md) and enabled when regenerating Table 3.
func EC2Model(region map[smr.NodeID]int, tails bool) *netsim.WANModel {
	return &netsim.WANModel{
		Region: func(id smr.NodeID) int {
			r, ok := region[id]
			if !ok {
				return CA // clients default to the primary's region
			}
			return r
		},
		Profiles:     netsim.SymmetricProfiles(numRegions, Table3, intraRegion),
		DisableTails: !tails,
	}
}

// DeltaFromTable3 derives Δ exactly as Section 5.1.1: the RTT between
// any two datacenters stays below 2.5 s 99.99% of the time, so
// Δ = 2.5/2 = 1.25 s.
func DeltaFromTable3() time.Duration {
	var worst time.Duration
	for k, p := range Table3 {
		if k[0] >= 6 || k[1] >= 6 {
			continue // estimated entries don't inform the published Δ
		}
		if p.P9999 > worst {
			worst = p.P9999
		}
	}
	// Round up to the paper's 2.5 s, then halve.
	bound := worst.Round(500 * time.Millisecond)
	if bound < worst {
		bound += 500 * time.Millisecond
	}
	if bound < 2500*time.Millisecond {
		bound = 2500 * time.Millisecond
	}
	return bound / 2
}
