package bench

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"time"

	"github.com/xft-consensus/xft/internal/crypto"
)

// BatchVerifyReport measures live per-signature verification cost on
// this host: sequential Ed25519 verification versus the multi-scalar
// batch verifier (internal/crypto/ed25519x), across batch sizes. This
// is the microbenchmark behind the Section 4.5 batching argument: the
// protocol batches B = 20 requests per sequence number, and the batch
// verifier makes the B signature checks cost roughly half of B
// independent verifications on top of whatever the worker pool
// parallelizes.
//
// Unlike the simulator experiments this measures wall-clock on real
// hardware, so absolute numbers vary by machine; the speedup column is
// the portable result.
func BatchVerifyReport(w io.Writer, sc Scale) {
	sizes := []int{1, 2, 4, 8, 16, 20, 32, 64}
	rounds := 40
	if sc.Quick {
		rounds = 10
	}
	suite := crypto.NewEd25519Suite(64, 1)
	fmt.Fprintf(w, "Live Ed25519 verification cost per signature (%d rounds/point)\n", rounds)
	fmt.Fprintf(w, "%6s  %14s  %14s  %8s\n", "batch", "sequential", "batched", "speedup")
	for _, n := range sizes {
		jobs := make([]crypto.VerifyJob, n)
		for i := 0; i < n; i++ {
			id := crypto.NodeID(i % 64)
			data := []byte(fmt.Sprintf("payload-%d", i))
			jobs[i] = crypto.VerifyJob{ID: id, Data: data, Sig: suite.Sign(id, data)}
		}
		// Warm the parsed-key cache so steady-state cost is measured.
		if !suite.BatchVerify(jobs) {
			panic("bench: fixture batch invalid")
		}
		// Sequential = stock crypto/ed25519, the pre-batching cost.
		seq := time.Duration(0)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i := range jobs {
				if !ed25519.Verify(suite.PublicKey(jobs[i].ID), jobs[i].Data, jobs[i].Sig) {
					panic("bench: signature rejected")
				}
			}
		}
		seq = time.Since(start)
		start = time.Now()
		for r := 0; r < rounds; r++ {
			if !suite.BatchVerify(jobs) {
				panic("bench: batch rejected")
			}
		}
		bat := time.Since(start)
		perSeq := seq / time.Duration(rounds*n)
		perBat := bat / time.Duration(rounds*n)
		fmt.Fprintf(w, "%6d  %12s/sig  %12s/sig  %7.2fx\n",
			n, perSeq.Round(100*time.Nanosecond), perBat.Round(100*time.Nanosecond),
			float64(perSeq)/float64(perBat))
	}
}
