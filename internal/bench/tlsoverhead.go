package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/transport"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// TLSOverhead measures what mutual TLS 1.3 costs on the live TCP
// loopback deployment: the same 3-replica XPaxos cluster (t = 1, real
// Ed25519 signatures, keepalive probing on) is driven by one
// open-loop client twice — plaintext, then with the transport's
// AutoTLS channel security — and the throughput and latency deltas
// are reported. Loopback has no propagation delay, so this
// upper-bounds the relative overhead: on a WAN the handshake is a
// one-time cost and the symmetric-crypto cost shrinks against real
// RTTs.
//
// Wall-clock on a shared host is noisy; like the other live-cluster
// experiments this is a report, not a CI gate — the CI smoke job runs
// it at quick scale to prove the TLS path end to end.
func TLSOverhead(w io.Writer, sc Scale) {
	ops, window := 2000, 16
	if sc.Quick {
		ops, window = 300, 8
	}
	fmt.Fprintf(w, "TLS channel-security overhead, 3-replica loopback cluster (%d ops, window %d)\n", ops, window)
	fmt.Fprintf(w, "%10s  %10s  %12s  %12s\n", "mode", "ops/s", "p50", "p99")
	plain := runLoopbackCluster(false, ops, window)
	fmt.Fprintf(w, "%10s  %10.0f  %12s  %12s\n", "plaintext", plain.opsPerSec, plain.p50, plain.p99)
	secured := runLoopbackCluster(true, ops, window)
	fmt.Fprintf(w, "%10s  %10.0f  %12s  %12s\n", "tls", secured.opsPerSec, secured.p50, secured.p99)
	fmt.Fprintf(w, "throughput ratio tls/plaintext: %.2f\n", secured.opsPerSec/plain.opsPerSec)
}

type loopbackResult struct {
	opsPerSec float64
	p50, p99  time.Duration
}

// runLoopbackCluster stands up a full TCP deployment on 127.0.0.1 —
// three xpaxos replicas and one windowed client — commits the given
// number of 512-byte writes, and tears everything down.
func runLoopbackCluster(withTLS bool, ops, window int) loopbackResult {
	const (
		n        = 3
		tf       = 1
		clientID = smr.ClientIDBase
	)
	suite := crypto.NewEd25519Suite(n+1024, 42)
	secure := func(id smr.NodeID) []transport.Option {
		if !withTLS {
			return nil
		}
		sec, err := transport.AutoTLS(suite, id)
		if err != nil {
			panic(err)
		}
		return []transport.Option{transport.WithTLS(sec)}
	}

	peers := map[smr.NodeID]string{}
	var nodes []*transport.Node
	for i := 0; i < n; i++ {
		id := smr.NodeID(i)
		rep := xpaxos.NewReplica(id, xpaxos.Config{
			N: n, T: tf,
			Suite:          suite,
			Delta:          500 * time.Millisecond,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
		}, kv.NewStore())
		opts := append(secure(id), transport.WithKeepalive(500*time.Millisecond, 2*time.Second))
		node, err := transport.NewNode(id, rep, "127.0.0.1:0", peers, opts...)
		if err != nil {
			panic(err)
		}
		peers[id] = node.Addr()
		nodes = append(nodes, node)
	}

	type completion struct{ lat time.Duration }
	done := make(chan completion, window+1)
	cl, err := xpaxos.NewClient(clientID, xpaxos.ClientConfig{
		N: n, T: tf, Suite: suite,
		RequestTimeout: 5 * time.Second,
		Window:         window,
		OnCommit:       func(op, rep []byte, lat time.Duration) { done <- completion{lat} },
	})
	if err != nil {
		panic(err)
	}
	cnode, err := transport.NewNode(clientID, cl, "127.0.0.1:0", peers, secure(clientID)...)
	if err != nil {
		panic(err)
	}
	peers[clientID] = cnode.Addr()
	nodes = append(nodes, cnode)

	for _, nd := range nodes {
		go nd.Run()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	op := kv.PutOp("/bench", make([]byte, 512))
	lats := make([]time.Duration, 0, ops)
	start := time.Now()
	inflight, issued, completed := 0, 0, 0
	for completed < ops {
		for inflight < window && issued < ops {
			cnode.Submit(smr.Invoke{Op: op})
			inflight++
			issued++
		}
		c := <-done
		lats = append(lats, c.lat)
		inflight--
		completed++
	}
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))].Round(10 * time.Microsecond)
	}
	return loopbackResult{
		opsPerSec: float64(ops) / elapsed.Seconds(),
		p50:       pct(0.50),
		p99:       pct(0.99),
	}
}
