package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/xft-consensus/xft/internal/wal"
)

// groupCommitDepth is the batch the group-commit leg covers with one
// fsync — matched to the replica pipeline depth the durability design
// targets (PipelineWindow 32), so the measured amortization is the one
// the WAL writer actually sees at a saturated pipeline.
const groupCommitDepth = 32

// DurabilityComparison measures what group commit buys on the real
// disk: the same record stream is appended to a fresh write-ahead log
// once with a sync per record (the naive durable loop) and once in
// batches of groupCommitDepth covered by a single sync (what the
// replica's WAL writer does when the pipeline keeps records arriving
// while a batch is in flight). A third leg repeats the group-commit
// run with full fsync forced, so the report shows what the Linux
// fdatasync fast path saves per record. Returns the per-record cost of
// the first two legs in nanoseconds plus the full-fsync group cost.
// Unlike the simulator experiments this measures the host's actual
// storage stack, so absolute numbers vary across machines — the gated
// quantity is the per-record/group ratio.
func DurabilityComparison(w io.Writer, sc Scale) (perEntryNs, groupNs, fullSyncNs float64, err error) {
	records, payload := 2048, 256
	if sc.Quick {
		records = 256
	}
	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i)
	}

	run := func(depth int, fullFsync bool) (float64, error) {
		dir, err := os.MkdirTemp("", "xft-durability-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		log, err := wal.Open(dir, wal.Options{FullFsync: fullFsync})
		if err != nil {
			return 0, err
		}
		defer log.Close()
		start := time.Now()
		for i := 0; i < records; i++ {
			if _, err := log.Append(buf); err != nil {
				return 0, err
			}
			if (i+1)%depth == 0 || i == records-1 {
				if err := log.Sync(); err != nil {
					return 0, err
				}
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(records), nil
	}

	if perEntryNs, err = run(1, false); err != nil {
		return 0, 0, 0, err
	}
	if groupNs, err = run(groupCommitDepth, false); err != nil {
		return 0, 0, 0, err
	}
	if fullSyncNs, err = run(groupCommitDepth, true); err != nil {
		return 0, 0, 0, err
	}

	fmt.Fprintf(w, "WAL group commit, %d records of %d B\n", records, payload)
	fmt.Fprintf(w, "sync per record:                 %10.0f ns/record\n", perEntryNs)
	fmt.Fprintf(w, "group commit (depth %d):         %10.0f ns/record\n", groupCommitDepth, groupNs)
	fmt.Fprintf(w, "group commit, full fsync forced: %10.0f ns/record\n", fullSyncNs)
	if groupNs > 0 {
		fmt.Fprintf(w, "amortization: %.2fx\n", perEntryNs/groupNs)
		fmt.Fprintf(w, "fdatasync saves %.0f ns/record over fsync at depth %d\n", fullSyncNs-groupNs, groupCommitDepth)
	}
	return perEntryNs, groupNs, fullSyncNs, nil
}
