package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/xft-consensus/xft/internal/wal"
)

// groupCommitDepth is the batch the group-commit leg covers with one
// fsync — matched to the replica pipeline depth the durability design
// targets (PipelineWindow 32), so the measured amortization is the one
// the WAL writer actually sees at a saturated pipeline.
const groupCommitDepth = 32

// DurabilityComparison measures what group commit buys on the real
// disk: the same record stream is appended to a fresh write-ahead log
// once with an fsync per record (the naive durable loop) and once in
// batches of groupCommitDepth covered by a single fsync (what the
// replica's WAL writer does when the pipeline keeps records arriving
// while a batch is in flight). Returns the per-record cost of both
// legs in nanoseconds. Unlike the simulator experiments this measures
// the host's actual storage stack, so absolute numbers vary across
// machines — the gated quantity is the ratio.
func DurabilityComparison(w io.Writer, sc Scale) (perEntryNs, groupNs float64, err error) {
	records, payload := 2048, 256
	if sc.Quick {
		records = 256
	}
	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i)
	}

	run := func(depth int) (float64, error) {
		dir, err := os.MkdirTemp("", "xft-durability-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		log, err := wal.Open(dir, wal.Options{})
		if err != nil {
			return 0, err
		}
		defer log.Close()
		start := time.Now()
		for i := 0; i < records; i++ {
			if _, err := log.Append(buf); err != nil {
				return 0, err
			}
			if (i+1)%depth == 0 || i == records-1 {
				if err := log.Sync(); err != nil {
					return 0, err
				}
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(records), nil
	}

	if perEntryNs, err = run(1); err != nil {
		return 0, 0, err
	}
	if groupNs, err = run(groupCommitDepth); err != nil {
		return 0, 0, err
	}

	fmt.Fprintf(w, "WAL group commit, %d records of %d B\n", records, payload)
	fmt.Fprintf(w, "fsync per record:        %10.0f ns/record\n", perEntryNs)
	fmt.Fprintf(w, "group commit (depth %d): %10.0f ns/record\n", groupCommitDepth, groupNs)
	if groupNs > 0 {
		fmt.Fprintf(w, "amortization: %.2fx\n", perEntryNs/groupNs)
	}
	return perEntryNs, groupNs, nil
}
