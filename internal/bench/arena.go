package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/xft-consensus/xft/internal/crypto"
)

// ArenaPoint is one protocol's measurement in the cross-protocol
// arena: the usual throughput/latency point plus the crypto counters
// that prove the optimized smr stack was actually engaged.
type ArenaPoint struct {
	Point
	Replicas int
	// Verifies and BatchedVerifies are summed over all replicas for the
	// whole run. BatchedVerifies > 0 is the arena's acceptance signal:
	// client-signature verification went through the deferred pool's
	// batch path, not the serial Step-loop fallback.
	Verifies        uint64
	BatchedVerifies uint64
}

// arenaProtocols is the arena line-up: XPaxos plus all four ported
// baselines.
var arenaProtocols = []Protocol{XPaxos, Paxos, PBFT, Zyzzyva, Zab}

// ArenaSpec returns the deployment spec the arena runs protocol p
// under: identical co-located topology, modern crypto priced for a
// 4-way verify pool, signed client requests on the baselines so every
// protocol pays for request authentication, and the async crypto
// pipeline on. Only the replica count differs, and only because the
// protocols' fault thresholds demand it (2t+1 vs 3t+1).
func ArenaSpec(p Protocol, clients int, seed int64) Spec {
	cm := crypto.CostModelModern(asyncVerifyWorkers)
	n := p.Replicas(1)
	regions := make([]int, n)
	for i := range regions {
		regions[i] = CA
	}
	return Spec{
		Protocol: p, T: 1, App: NullApp, ReqSize: 1024,
		Clients: clients, Seed: seed, CostModel: &cm,
		ReplicaRegions: regions,
		SignedRequests: true,
		VerifyWorkers:  asyncVerifyWorkers,
	}
}

// RunArenaPoint runs one protocol's arena measurement: a RunPoint-style
// closed loop plus the cluster's summed crypto counters.
func RunArenaPoint(spec Spec, warmup, measure time.Duration) ArenaPoint {
	c := Build(spec)
	var (
		committed uint64
		latSum    time.Duration
	)
	winStart, winEnd := warmup, warmup+measure
	for ci := 0; ci < c.NumClients(); ci++ {
		ci := ci
		c.SetOnCommit(ci, func(op, rep []byte, lat time.Duration) {
			now := c.Net.Now()
			if now >= winStart && now < winEnd {
				committed++
				latSum += lat
			}
			c.Invoke(ci, make([]byte, spec.ReqSize))
		})
	}
	c.Net.At(0, func() {
		for ci := 0; ci < c.NumClients(); ci++ {
			c.Invoke(ci, make([]byte, spec.ReqSize))
		}
	})
	var busyStart, busyEnd time.Duration
	c.Net.At(winStart, func() { busyStart = c.Net.Stats(c.Primary).CPUBusy })
	c.Net.At(winEnd, func() { busyEnd = c.Net.Stats(c.Primary).CPUBusy })
	c.Net.RunUntil(winEnd + 10*time.Millisecond)

	ap := ArenaPoint{
		Point:    Point{Protocol: spec.Protocol, Clients: spec.Clients},
		Replicas: spec.Protocol.Replicas(spec.T),
	}
	secs := measure.Seconds()
	ap.ThroughputKops = float64(committed) / secs / 1000
	if committed > 0 {
		ap.LatencyMs = float64(latSum.Milliseconds()) / float64(committed)
	}
	ap.PrimaryCPU = float64(busyEnd-busyStart) / float64(measure)
	for _, m := range c.Meters {
		counts := m.Total()
		ap.Verifies += counts.Verifies
		ap.BatchedVerifies += counts.BatchedVerifies
	}
	return ap
}

// Arena runs the cross-protocol benchmark arena: all five protocols on
// identical single-region netsim topologies — same clients, same cost
// model, same request authentication burden — so the numbers compare
// protocol overheads rather than deployment accidents. It renders the
// comparative table to w and returns the points in line-up order for
// benchmark gating.
func Arena(w io.Writer, sc Scale) []ArenaPoint {
	clients := sc.clientCounts()[len(sc.clientCounts())-1]
	return arena(w, clients, sc.warmup(), sc.measure())
}

// arena is the scale-free core of Arena, split out so tests can render
// the table at a load small enough for unit-test budgets.
func arena(w io.Writer, clients int, warmup, measure time.Duration) []ArenaPoint {
	points := make([]ArenaPoint, 0, len(arenaProtocols))
	for _, p := range arenaProtocols {
		points = append(points, RunArenaPoint(ArenaSpec(p, clients, 23), warmup, measure))
	}
	fmt.Fprintf(w, "Cross-protocol arena: 1/0 benchmark, t=1, %d clients, co-located replicas, signed requests, modern cost model (%d verify workers)\n",
		clients, asyncVerifyWorkers)
	fmt.Fprintf(w, "%-9s %-9s %-18s %-12s %-10s %-10s %-10s\n",
		"protocol", "replicas", "throughput(kops/s)", "latency(ms)", "cpu(%)", "verifies", "batched")
	for _, ap := range points {
		fmt.Fprintf(w, "%-9s %-9d %-18.2f %-12.1f %-10.1f %-10d %-10d\n",
			ap.Protocol, ap.Replicas, ap.ThroughputKops, ap.LatencyMs, ap.PrimaryCPU*100, ap.Verifies, ap.BatchedVerifies)
	}
	return points
}
