package bench

import (
	"strings"
	"testing"
	"time"
)

// TestArenaAllProtocolsEngageBatchVerification is the arena acceptance
// check at unit-test scale: every protocol commits on the shared
// topology and its verification traffic goes through the batch path,
// proving the baselines ride the optimized smr stack rather than
// serial Step-loop crypto.
func TestArenaAllProtocolsEngageBatchVerification(t *testing.T) {
	for _, p := range arenaProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			ap := RunArenaPoint(ArenaSpec(p, 8, 23), 500*time.Millisecond, time.Second)
			if ap.ThroughputKops <= 0 {
				t.Fatalf("%s made no progress in the arena", p)
			}
			if ap.Verifies == 0 {
				t.Fatalf("%s verified nothing despite signed requests", p)
			}
			if ap.BatchedVerifies == 0 {
				t.Fatalf("%s: no batched verifies — the deferred verify pipeline never engaged", p)
			}
		})
	}
}

// TestArenaTableListsAllProtocols checks the rendered comparison names
// every protocol in the line-up. It runs the table at toy load — the
// full-scale arena is BenchmarkArenaSim's job.
func TestArenaTableListsAllProtocols(t *testing.T) {
	var sb strings.Builder
	points := arena(&sb, 8, 200*time.Millisecond, 500*time.Millisecond)
	out := sb.String()
	if len(points) != len(arenaProtocols) {
		t.Fatalf("arena returned %d points for %d protocols", len(points), len(arenaProtocols))
	}
	for _, p := range arenaProtocols {
		if !strings.Contains(out, string(p)) {
			t.Errorf("arena table missing %s:\n%s", p, out)
		}
	}
}
