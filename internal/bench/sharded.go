package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/netsim"
	"github.com/xft-consensus/xft/internal/shard"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// Sharded-saturation experiment parameters. Three machines host every
// group (n = 2t+1 = 3 replicas per group, replica i of each group on
// machine i), so machine 0 is the view-0 primary of all groups — the
// worst case for the shared plane: one Step loop, one sign unit and
// one verify unit carry every group's primary work.
const (
	shardedClientsPerGroup = 6
	shardedValueSize       = 128
)

// ShardedGroupCounts is the sweep's x-axis.
var ShardedGroupCounts = []int{1, 2, 4, 8}

// ShardPoint is one measurement of the sharded-saturation sweep.
type ShardPoint struct {
	Groups         int
	ThroughputKops float64 // aggregate across all groups
	LatencyMs      float64
	// PrimaryCPU is machine 0's busy fraction (it is primary of every
	// group, so it saturates first).
	PrimaryCPU float64
}

// ShardedSaturation measures aggregate XPaxos throughput as one
// process-set hosts 1, 2, 4 and 8 replication groups over a shared
// plane: each simulated machine runs all of its groups' replicas
// behind one smr.GroupMux with a single crypto meter (the shared
// sign/verify units), and each client machine runs a shard.Router
// whose per-group clients drive a fixed closed loop against keys the
// consistent-hash ring pins to their group.
//
// The single-group configuration is deliberately latency-bound, not
// capacity-bound: a handful of closed-loop clients per group and the
// modern cost model (full per-op constants, 8-lane sign and verify
// units) leave each group's batch pipeline dominated by its serial
// chain — client hop, batch signature, follower hop, ack signature,
// reply — while the machine's crypto lanes sit mostly idle. Adding
// groups multiplies the number of independent serial chains sharing
// those lanes, so aggregate throughput scales near-linearly until the
// shared units saturate. That scaling is the experiment's product:
// CI gates 4 groups at >= 2.5x the single-group number.
func ShardedSaturation(w io.Writer, sc Scale) []ShardPoint {
	fmt.Fprintf(w, "XPaxos sharded saturation: 3 co-located machines, %d closed-loop clients per group, modern cost model (%d sign/verify lanes)\n",
		shardedClientsPerGroup, cores)
	fmt.Fprintf(w, "%-8s %-18s %-12s %-10s %-8s\n", "groups", "throughput(kops/s)", "latency(ms)", "cpu(%)", "scaling")
	points := make([]ShardPoint, 0, len(ShardedGroupCounts))
	var base float64
	for _, g := range ShardedGroupCounts {
		p := runShardedPoint(g, sc)
		points = append(points, p)
		if g == 1 {
			base = p.ThroughputKops
		}
		scaling := 0.0
		if base > 0 {
			scaling = p.ThroughputKops / base
		}
		fmt.Fprintf(w, "%-8d %-18.2f %-12.1f %-10.1f %.2fx\n",
			p.Groups, p.ThroughputKops, p.LatencyMs, p.PrimaryCPU*100, scaling)
	}
	return points
}

// runShardedPoint builds and drives one group-count configuration.
func runShardedPoint(groups int, sc Scale) ShardPoint {
	const n, tf = 3, 1
	seed := int64(21 + groups)
	cm := crypto.CostModelModern(cores)
	net := netsim.New(netsim.Config{
		// Co-located placement: a datacenter hop, not the WAN. The
		// point must be latency-bound per group but cheap enough that
		// crypto (not propagation) is what eventually saturates.
		Latency:     netsim.Uniform{Delay: 500 * time.Microsecond},
		CostModel:   cm,
		SignLanes:   cores,
		VerifyLanes: cores,
		Seed:        seed,
	})
	suite := crypto.NewSimSuite(seed + 1)

	// Machines: one GroupMux per machine hosting replica i of every
	// group, all sharing one crypto meter — the machine's crypto plane.
	for i := 0; i < n; i++ {
		mux := smr.NewGroupMux()
		meter := crypto.NewMeter(suite)
		for g := 0; g < groups; g++ {
			cfg := xpaxos.Config{
				N: n, T: tf, Suite: meter,
				Delta:              50 * time.Millisecond,
				BatchSize:          shardedClientsPerGroup,
				BatchTimeout:       time.Millisecond,
				RequestTimeout:     2 * time.Second,
				ViewChangeTimeout:  4 * time.Second,
				CheckpointInterval: 32,
			}
			mux.MustRegister(smr.GroupID(g), xpaxos.NewReplica(smr.NodeID(i), cfg, kv.NewStore()))
		}
		net.AddNode(smr.NodeID(i), mux, netsim.WithMeter(meter))
	}

	groupIDs := make([]smr.GroupID, groups)
	for g := range groupIDs {
		groupIDs[g] = smr.GroupID(g)
	}
	ring, err := shard.NewRing(groupIDs, 0)
	if err != nil {
		panic(err)
	}
	// Pin one key per (client machine, group) via rejection sampling
	// through the ring, so every client's closed loop stays on its
	// shard and the routing decision is exercised on every op.
	keyFor := func(g smr.GroupID, ci int) string {
		for v := 0; ; v++ {
			k := fmt.Sprintf("g%d-c%d-%d", g, ci, v)
			if ring.Group(k) == g {
				return k
			}
		}
	}

	var (
		committed uint64
		latSum    time.Duration
	)
	winStart, winEnd := sc.warmup(), sc.warmup()+sc.measure()
	value := make([]byte, shardedValueSize)

	// Client machines: each hosts one Router (one XPaxos client per
	// group over the router's own GroupMux). Every (machine, group)
	// pair runs an independent window-1 closed loop.
	routers := make([]*shard.Router, shardedClientsPerGroup)
	for ci := 0; ci < shardedClientsPerGroup; ci++ {
		ci := ci
		id := smr.ClientIDBase + smr.NodeID(ci)
		router, err := shard.NewRouter(ring, func(g smr.GroupID) (*xpaxos.Client, error) {
			op := kv.PutOp(keyFor(g, ci), value)
			return xpaxos.NewClient(id, xpaxos.ClientConfig{
				N: n, T: tf, Suite: crypto.NewMeter(suite),
				RequestTimeout: 2 * time.Second,
				OnCommit: func(_, _ []byte, lat time.Duration) {
					now := net.Now()
					if now >= winStart && now < winEnd {
						committed++
						latSum += lat
					}
					routers[ci].Invoke(op)
				},
			})
		})
		if err != nil {
			panic(err)
		}
		routers[ci] = router
		net.AddNode(id, router)
	}
	net.At(0, func() {
		for ci, router := range routers {
			for _, g := range groupIDs {
				router.Invoke(kv.PutOp(keyFor(g, ci), value))
			}
		}
	})

	var busyStart, busyEnd time.Duration
	net.At(winStart, func() { busyStart = net.Stats(0).CPUBusy })
	net.At(winEnd, func() { busyEnd = net.Stats(0).CPUBusy })
	net.RunUntil(winEnd + 10*time.Millisecond)

	p := ShardPoint{Groups: groups}
	p.ThroughputKops = float64(committed) / sc.measure().Seconds() / 1000
	if committed > 0 {
		p.LatencyMs = float64(latSum.Milliseconds()) / float64(committed)
	}
	p.PrimaryCPU = float64(busyEnd-busyStart) / float64(sc.measure())
	return p
}
