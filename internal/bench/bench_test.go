package bench

import (
	"strings"
	"testing"
	"time"
)

// TestAllProtocolsCommitUnderWANModel is the harness smoke test: every
// protocol commits requests on the Table 4 EC2 deployment.
func TestAllProtocolsCommitUnderWANModel(t *testing.T) {
	protos := append(append([]Protocol{}, AllProtocols...), Zab)
	for _, proto := range protos {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			spec := Spec{Protocol: proto, T: 1, App: NullApp, ReqSize: 1024, Clients: 4, Seed: 1}
			p := RunPoint(spec, microOp(1024), time.Second, 2*time.Second)
			if p.ThroughputKops <= 0 {
				t.Fatalf("%s: no throughput on WAN deployment", proto)
			}
			if p.LatencyMs <= 0 || p.LatencyMs > 2000 {
				t.Fatalf("%s: implausible latency %v ms", proto, p.LatencyMs)
			}
		})
	}
}

// TestLatencyOrderingMatchesFigure7 checks the latency shape at low
// load: XPaxos ≈ Paxos (one WAN round trip to the follower) and both
// clearly below PBFT and Zyzzyva (extra WAN hops / farther quorums).
func TestLatencyOrderingMatchesFigure7(t *testing.T) {
	lat := map[Protocol]float64{}
	for _, proto := range AllProtocols {
		spec := Spec{Protocol: proto, T: 1, App: NullApp, ReqSize: 1024, Clients: 4, Seed: 2}
		p := RunPoint(spec, microOp(1024), time.Second, 3*time.Second)
		lat[proto] = p.LatencyMs
	}
	if diff := lat[XPaxos] - lat[Paxos]; diff < -30 || diff > 30 {
		t.Errorf("XPaxos latency %0.f ms should be close to Paxos %0.f ms", lat[XPaxos], lat[Paxos])
	}
	if lat[PBFT] <= lat[XPaxos] {
		t.Errorf("PBFT latency %0.f ms should exceed XPaxos %0.f ms", lat[PBFT], lat[XPaxos])
	}
	if lat[Zyzzyva] <= lat[Paxos] {
		t.Errorf("Zyzzyva latency %0.f ms should exceed Paxos %0.f ms", lat[Zyzzyva], lat[Paxos])
	}
}

// TestThroughputShapeUnderBandwidth checks the Figure 7/10 throughput
// ordering at saturation with the leader's egress as bottleneck:
// XPaxos ≈ Paxos > PBFT > Zyzzyva, and XPaxos > Zab.
func TestThroughputShapeUnderBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	tput := map[Protocol]float64{}
	protos := append(append([]Protocol{}, AllProtocols...), Zab)
	for _, proto := range protos {
		spec := Spec{Protocol: proto, T: 1, App: NullApp, ReqSize: 1024,
			EgressMBps: 2, Clients: 400, Seed: 3}
		p := RunPoint(spec, microOp(1024), 2*time.Second, 4*time.Second)
		tput[proto] = p.ThroughputKops
	}
	// XPaxos trails Paxos slightly (the t=1 reply carries the
	// follower's signed commit, ~350 B/request of primary egress that
	// Paxos does not pay); the paper reports a ~10% gap, our model a
	// ~30% one — see EXPERIMENTS.md.
	if tput[XPaxos] < 0.6*tput[Paxos] {
		t.Errorf("XPaxos throughput %.2f should be close to Paxos %.2f", tput[XPaxos], tput[Paxos])
	}
	if tput[PBFT] >= tput[XPaxos] {
		t.Errorf("PBFT %.2f should be below XPaxos %.2f (2 payload streams vs 1)", tput[PBFT], tput[XPaxos])
	}
	if tput[Zyzzyva] >= tput[PBFT]*1.2 {
		t.Errorf("Zyzzyva %.2f should not exceed PBFT %.2f (3 payload streams)", tput[Zyzzyva], tput[PBFT])
	}
	if tput[Zab] >= tput[XPaxos] {
		t.Errorf("Zab %.2f should be below XPaxos %.2f (Section 5.5)", tput[Zab], tput[XPaxos])
	}
}

// TestFig8CPUOrdering: XPaxos (signatures) uses more CPU than the
// MAC-based protocols at comparable load.
func TestFig8CPUOrdering(t *testing.T) {
	cpu := map[Protocol]float64{}
	for _, proto := range []Protocol{XPaxos, Paxos} {
		spec := Spec{Protocol: proto, T: 1, App: NullApp, ReqSize: 1024, Clients: 50, Seed: 4}
		p := RunPoint(spec, microOp(1024), time.Second, 3*time.Second)
		cpu[proto] = p.PrimaryCPU
	}
	if cpu[XPaxos] <= cpu[Paxos] {
		t.Errorf("XPaxos CPU %.4f should exceed Paxos %.4f (signatures vs MACs)", cpu[XPaxos], cpu[Paxos])
	}
}

func TestPatternReportListsAllProtocols(t *testing.T) {
	var sb strings.Builder
	PatternReport(&sb)
	out := sb.String()
	for _, proto := range []string{"XPaxos", "Paxos", "PBFT", "Zyzzyva", "Zab"} {
		if !strings.Contains(out, proto) {
			t.Errorf("pattern report missing %s:\n%s", proto, out)
		}
	}
}

func TestTable3ReportShape(t *testing.T) {
	var sb strings.Builder
	Table3Report(&sb, Scale{Quick: true})
	out := sb.String()
	if !strings.Contains(out, "US-East(VA)") || !strings.Contains(out, "derived Δ") {
		t.Fatalf("table 3 report malformed:\n%s", out)
	}
	if !strings.Contains(out, "1.25s") {
		t.Errorf("derived Δ should be 1.25s:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 17 {
		t.Errorf("expected 15 pairs + header + delta, got:\n%s", out)
	}
}

func TestDeltaFromTable3(t *testing.T) {
	if d := DeltaFromTable3(); d != 1250*time.Millisecond {
		t.Fatalf("Δ = %v, want 1.25s", d)
	}
}

func TestZKMacroWorkload(t *testing.T) {
	spec := Spec{Protocol: XPaxos, T: 1, App: ZKApp, ReqSize: 1024, Clients: 3, Seed: 5}
	p := RunPoint(spec, zkWriteOp(1024), time.Second, 2*time.Second)
	if p.ThroughputKops <= 0 {
		t.Fatalf("zk workload made no progress")
	}
}

func TestT2Deployment(t *testing.T) {
	for _, proto := range []Protocol{XPaxos, Paxos, PBFT} {
		spec := Spec{Protocol: proto, T: 2, App: NullApp, ReqSize: 1024, Clients: 3, Seed: 6}
		p := RunPoint(spec, microOp(1024), time.Second, 2*time.Second)
		if p.ThroughputKops <= 0 {
			t.Fatalf("%s made no progress at t=2", proto)
		}
	}
}
