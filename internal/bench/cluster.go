package bench

import (
	"fmt"
	"time"

	"github.com/xft-consensus/xft/internal/apps/kv"
	"github.com/xft-consensus/xft/internal/apps/zk"
	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/netsim"
	"github.com/xft-consensus/xft/internal/paxos"
	"github.com/xft-consensus/xft/internal/pbft"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
	"github.com/xft-consensus/xft/internal/zab"
	"github.com/xft-consensus/xft/internal/zyzzyva"
)

// Protocol names a replication protocol under test.
type Protocol string

// The five protocols of the evaluation.
const (
	XPaxos  Protocol = "XPaxos"
	Paxos   Protocol = "Paxos"
	PBFT    Protocol = "PBFT"
	Zyzzyva Protocol = "Zyzzyva"
	Zab     Protocol = "Zab"
)

// AllProtocols is the Figure 7 line-up; Figure 10 adds Zab.
var AllProtocols = []Protocol{XPaxos, Paxos, PBFT, Zyzzyva}

// Replicas returns the number of replicas protocol p needs for fault
// threshold t.
func (p Protocol) Replicas(t int) int {
	switch p {
	case PBFT, Zyzzyva:
		return 3*t + 1
	default:
		return 2*t + 1
	}
}

// AppKind selects the replicated application.
type AppKind int

const (
	// NullApp replicates the paper's null service (microbenchmarks).
	NullApp AppKind = iota
	// ZKApp replicates the ZooKeeper-like store (macro-benchmark).
	ZKApp
)

// Spec describes one deployment.
type Spec struct {
	Protocol Protocol
	T        int
	App      AppKind
	// ReqSize/RepSize parameterize the microbenchmark (1/0 and 4/0).
	ReqSize, RepSize int
	Clients          int
	BatchSize        int
	// PipelineWindow caps the XPaxos primary's in-flight batches
	// (0 → the protocol default; 1 → lock-step).
	PipelineWindow int
	// ReplicaRegions[i] is replica i's region; defaults to the paper's
	// Table 4 placement when nil. Clients live in the primary's region.
	ReplicaRegions []int
	// EgressMBps is each node's outbound bandwidth in MB/s (the WAN
	// bottleneck). Zero disables bandwidth modeling.
	EgressMBps float64
	Seed       int64
	// Delta overrides Δ (default: derived from Table 3 = 1.25 s).
	Delta time.Duration
	// EnableFD turns on XPaxos fault detection.
	EnableFD bool
	// SyncCrypto disables the async crypto pipeline on XPaxos
	// replicas: every signature operation runs inside the Step loop
	// (the pre-pipeline behavior), the baseline of the async-vs-sync
	// experiment.
	SyncCrypto bool
	// CostModel overrides the per-core paper cost model (used by the
	// modern-crypto experiments; nil keeps the default).
	CostModel *crypto.CostModel
	// SignedRequests makes clients of the four baseline protocols sign
	// their requests and replicas verify them before ordering (the
	// arena's apples-to-apples configuration; XPaxos always
	// authenticates). Off by default for paper fidelity.
	SignedRequests bool
	// VerifyWorkers sets the baselines' verification-pool width for
	// signed requests (0 → the shared pool, 1 → serial).
	VerifyWorkers int
}

// Table4Regions returns the paper's replica placement (Table 4, t=1;
// Section 5.2's list for t=2).
func Table4Regions(p Protocol, t int) []int {
	if t == 1 {
		switch p {
		case PBFT:
			return []int{CA, VA, JP, EU}
		case Zyzzyva:
			return []int{CA, VA, JP, EU}
		case Zab:
			return []int{CA, VA, JP}
		default: // XPaxos, Paxos: primary CA, follower VA, passive JP
			return []int{CA, VA, JP}
		}
	}
	// t=2 (Section 5.2): CA, OR, VA, JP, EU, AU, SG.
	order := []int{CA, OR, VA, JP, EU, AU, SG}
	return order[:p.Replicas(t)]
}

// Cluster is a ready-to-run deployment.
type Cluster struct {
	Spec    Spec
	Net     *netsim.Network
	Primary smr.NodeID
	// Meters[i] is replica i's crypto meter.
	Meters []*crypto.Meter

	clients []*clientHandle
}

// clientHandle abstracts the per-protocol client types behind a common
// closed-loop interface.
type clientHandle struct {
	id       smr.NodeID
	invoke   func(op []byte)
	onCommit *func(op, rep []byte, lat time.Duration)
}

// Invoke submits an operation on client ci (must be called from event
// context or before the run starts).
func (c *Cluster) Invoke(ci int, op []byte) { c.clients[ci].invoke(op) }

// SetOnCommit installs the commit callback for client ci.
func (c *Cluster) SetOnCommit(ci int, fn func(op, rep []byte, lat time.Duration)) {
	*c.clients[ci].onCommit = fn
}

// NumClients returns the number of clients.
func (c *Cluster) NumClients() int { return len(c.clients) }

// newApp builds a fresh application instance.
func (s Spec) newApp() smr.Application {
	switch s.App {
	case ZKApp:
		return zk.NewStore()
	default:
		return &kv.Null{ReplySize: s.RepSize}
	}
}

// Build constructs the deployment over a fresh simulated WAN.
func Build(spec Spec) *Cluster {
	if spec.T == 0 {
		spec.T = 1
	}
	if spec.BatchSize == 0 {
		spec.BatchSize = 20 // the paper's batch size
	}
	if spec.Clients == 0 {
		spec.Clients = 1
	}
	if spec.Delta == 0 {
		spec.Delta = DeltaFromTable3()
	}
	n := spec.Protocol.Replicas(spec.T)
	regions := spec.ReplicaRegions
	if regions == nil {
		regions = Table4Regions(spec.Protocol, spec.T)
	}
	if len(regions) != n {
		panic(fmt.Sprintf("bench: %d regions for %d replicas", len(regions), n))
	}
	regionOf := make(map[smr.NodeID]int, n)
	for i := 0; i < n; i++ {
		regionOf[smr.NodeID(i)] = regions[i]
	}
	// Clients co-locate with the (initial) primary — replica 0 in every
	// protocol here (Table 4).
	for i := 0; i < spec.Clients; i++ {
		regionOf[smr.ClientIDBase+smr.NodeID(i)] = regions[0]
	}

	cm := costModel() // per-core costs (8-way parallel crypto)
	if spec.CostModel != nil {
		cm = *spec.CostModel
	}
	net := netsim.New(netsim.Config{
		Latency:           EC2Model(regionOf, false),
		EgressBytesPerSec: spec.EgressMBps * 1e6,
		CostModel:         cm,
		// Deferred verification jobs overlap across as many lanes as the
		// protocols' verify pools have workers (0 → one lane, the
		// single-unit model every pre-arena experiment used).
		VerifyLanes: spec.VerifyWorkers,
		Seed:        spec.Seed,
	})
	suite := crypto.NewSimSuite(spec.Seed + 1)

	c := &Cluster{Spec: spec, Net: net, Primary: 0}
	// Detection (request retransmission) after 2Δ; the view-change
	// timer gets 4Δ = 5 s — checkpoints every 32 batches bound the
	// transferred state (32 × 20 × 1 kB ≈ 640 kB per log, ≈1 s of WAN
	// transfer), so 4Δ comfortably covers the 2Δ collection window
	// plus state transfer while bounding time wasted on views whose
	// group contains a crashed replica.
	timeouts := struct{ req, vc time.Duration }{2 * spec.Delta, 4 * spec.Delta}

	addReplica := func(i int, node smr.Node, meter *crypto.Meter) {
		c.Meters = append(c.Meters, meter)
		net.AddNode(smr.NodeID(i), node, netsim.WithMeter(meter))
	}

	switch spec.Protocol {
	case XPaxos:
		for i := 0; i < n; i++ {
			meter := crypto.NewMeter(suite)
			cfg := xpaxos.Config{
				N: n, T: spec.T, Suite: meter, Delta: spec.Delta,
				BatchSize: spec.BatchSize, PipelineWindow: spec.PipelineWindow,
				RequestTimeout:    timeouts.req,
				ViewChangeTimeout: timeouts.vc, CheckpointInterval: 32,
				EnableFD:           spec.EnableFD,
				DisableAsyncCrypto: spec.SyncCrypto,
			}
			addReplica(i, xpaxos.NewReplica(smr.NodeID(i), cfg, spec.newApp()), meter)
		}
		for i := 0; i < spec.Clients; i++ {
			id := smr.ClientIDBase + smr.NodeID(i)
			cb := new(func(op, rep []byte, lat time.Duration))
			cl, err := xpaxos.NewClient(id, xpaxos.ClientConfig{
				N: n, T: spec.T, Suite: crypto.NewMeter(suite),
				RequestTimeout: timeouts.req,
				OnCommit: func(op, rep []byte, lat time.Duration) {
					if *cb != nil {
						(*cb)(op, rep, lat)
					}
				},
			})
			if err != nil {
				panic(err)
			}
			net.AddNode(id, cl)
			c.clients = append(c.clients, &clientHandle{id: id, invoke: cl.Invoke, onCommit: cb})
		}
	case Paxos:
		for i := 0; i < n; i++ {
			meter := crypto.NewMeter(suite)
			cfg := paxos.Config{
				N: n, T: spec.T, Suite: meter, BatchSize: spec.BatchSize, RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests, VerifyWorkers: spec.VerifyWorkers,
				DisableAsyncCrypto: spec.SyncCrypto,
			}
			addReplica(i, paxos.NewReplica(smr.NodeID(i), cfg, spec.newApp()), meter)
		}
		for i := 0; i < spec.Clients; i++ {
			id := smr.ClientIDBase + smr.NodeID(i)
			cl := paxos.NewClient(id, paxos.Config{
				N: n, T: spec.T, Suite: crypto.NewMeter(suite), RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests,
			})
			cb := new(func(op, rep []byte, lat time.Duration))
			cl.OnCommit = func(op, rep []byte, lat time.Duration) {
				if *cb != nil {
					(*cb)(op, rep, lat)
				}
			}
			net.AddNode(id, cl)
			c.clients = append(c.clients, &clientHandle{id: id, invoke: cl.Invoke, onCommit: cb})
		}
	case PBFT:
		for i := 0; i < n; i++ {
			meter := crypto.NewMeter(suite)
			cfg := pbft.Config{
				N: n, T: spec.T, Suite: meter, BatchSize: spec.BatchSize, RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests, VerifyWorkers: spec.VerifyWorkers,
				DisableAsyncCrypto: spec.SyncCrypto,
			}
			addReplica(i, pbft.NewReplica(smr.NodeID(i), cfg, spec.newApp()), meter)
		}
		for i := 0; i < spec.Clients; i++ {
			id := smr.ClientIDBase + smr.NodeID(i)
			cl := pbft.NewClient(id, pbft.Config{
				N: n, T: spec.T, Suite: crypto.NewMeter(suite), RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests,
			})
			cb := new(func(op, rep []byte, lat time.Duration))
			cl.OnCommit = func(op, rep []byte, lat time.Duration) {
				if *cb != nil {
					(*cb)(op, rep, lat)
				}
			}
			net.AddNode(id, cl)
			c.clients = append(c.clients, &clientHandle{id: id, invoke: cl.Invoke, onCommit: cb})
		}
	case Zyzzyva:
		for i := 0; i < n; i++ {
			meter := crypto.NewMeter(suite)
			cfg := zyzzyva.Config{
				N: n, T: spec.T, Suite: meter, BatchSize: spec.BatchSize, RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests, VerifyWorkers: spec.VerifyWorkers,
				DisableAsyncCrypto: spec.SyncCrypto,
			}
			addReplica(i, zyzzyva.NewReplica(smr.NodeID(i), cfg, spec.newApp()), meter)
		}
		for i := 0; i < spec.Clients; i++ {
			id := smr.ClientIDBase + smr.NodeID(i)
			cl := zyzzyva.NewClient(id, zyzzyva.Config{
				N: n, T: spec.T, Suite: crypto.NewMeter(suite), RequestTimeout: timeouts.req, CommitTimeout: spec.Delta,
				SignedRequests: spec.SignedRequests,
			})
			cb := new(func(op, rep []byte, lat time.Duration))
			cl.OnCommit = func(op, rep []byte, lat time.Duration) {
				if *cb != nil {
					(*cb)(op, rep, lat)
				}
			}
			net.AddNode(id, cl)
			c.clients = append(c.clients, &clientHandle{id: id, invoke: cl.Invoke, onCommit: cb})
		}
	case Zab:
		for i := 0; i < n; i++ {
			meter := crypto.NewMeter(suite)
			cfg := zab.Config{
				N: n, T: spec.T, Suite: meter, BatchSize: spec.BatchSize, RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests, VerifyWorkers: spec.VerifyWorkers,
				DisableAsyncCrypto: spec.SyncCrypto,
			}
			addReplica(i, zab.NewReplica(smr.NodeID(i), cfg, spec.newApp()), meter)
		}
		for i := 0; i < spec.Clients; i++ {
			id := smr.ClientIDBase + smr.NodeID(i)
			cl := zab.NewClient(id, zab.Config{
				N: n, T: spec.T, Suite: crypto.NewMeter(suite), RequestTimeout: timeouts.req,
				SignedRequests: spec.SignedRequests,
			})
			cb := new(func(op, rep []byte, lat time.Duration))
			cl.OnCommit = func(op, rep []byte, lat time.Duration) {
				if *cb != nil {
					(*cb)(op, rep, lat)
				}
			}
			net.AddNode(id, cl)
			c.clients = append(c.clients, &clientHandle{id: id, invoke: cl.Invoke, onCommit: cb})
		}
	default:
		panic("bench: unknown protocol " + string(spec.Protocol))
	}
	return c
}
