package bench

import (
	"fmt"
	"time"

	"github.com/xft-consensus/xft/internal/apps/zk"
)

// Point is one measurement of a latency/throughput sweep.
type Point struct {
	Protocol       Protocol
	Clients        int
	ThroughputKops float64 // committed requests per second ÷ 1000
	LatencyMs      float64 // mean request latency in the window
	// PrimaryCPU is the fraction of the measurement window the most
	// loaded node's simulated CPU was busy (Figure 8's metric).
	PrimaryCPU float64
}

// opMaker builds the operation each client submits; index i
// distinguishes clients.
type opMaker func(clientIdx, seq int) []byte

// microOp returns the microbenchmark payload of the given size.
func microOp(size int) opMaker {
	return func(ci, seq int) []byte { return make([]byte, size) }
}

// zkWriteOp returns 1 kB ZooKeeper SetData operations, each client
// writing its own znode (Section 5.5). The client's first operation
// creates the znode, so no serialized setup phase precedes the run.
func zkWriteOp(size int) opMaker {
	data := make([]byte, size)
	return func(ci, seq int) []byte {
		path := fmt.Sprintf("/bench-c%d", ci)
		if seq == 0 {
			return zk.CreateOp(path, data, zk.ModePersistent)
		}
		return zk.SetOp(path, data, -1)
	}
}

// RunPoint runs a closed-loop load on a freshly built cluster and
// measures throughput and latency inside [warmup, warmup+measure).
func RunPoint(spec Spec, mkOp opMaker, warmup, measure time.Duration) Point {
	c := Build(spec)
	var (
		committed uint64
		latSum    time.Duration
	)
	winStart, winEnd := warmup, warmup+measure
	for ci := 0; ci < c.NumClients(); ci++ {
		ci := ci
		seq := 0
		c.SetOnCommit(ci, func(op, rep []byte, lat time.Duration) {
			now := c.Net.Now()
			if now >= winStart && now < winEnd {
				committed++
				latSum += lat
			}
			seq++
			c.Invoke(ci, mkOp(ci, seq))
		})
	}
	c.Net.At(0, func() {
		for ci := 0; ci < c.NumClients(); ci++ {
			c.Invoke(ci, mkOp(ci, 0))
		}
	})

	// Sample the primary's CPU busy time at the window edges.
	var busyStart, busyEnd time.Duration
	c.Net.At(winStart, func() { busyStart = c.Net.Stats(c.Primary).CPUBusy })
	c.Net.At(winEnd, func() { busyEnd = c.Net.Stats(c.Primary).CPUBusy })

	c.Net.RunUntil(winEnd + 10*time.Millisecond)

	p := Point{Protocol: spec.Protocol, Clients: spec.Clients}
	secs := measure.Seconds()
	p.ThroughputKops = float64(committed) / secs / 1000
	if committed > 0 {
		p.LatencyMs = float64(latSum.Milliseconds()) / float64(committed)
	}
	p.PrimaryCPU = float64(busyEnd-busyStart) / float64(measure)
	return p
}

// Sweep runs RunPoint across client counts.
func Sweep(base Spec, mkOp opMaker, clientCounts []int, warmup, measure time.Duration) []Point {
	out := make([]Point, 0, len(clientCounts))
	for _, nc := range clientCounts {
		spec := base
		spec.Clients = nc
		spec.Seed = base.Seed + int64(nc)
		out = append(out, RunPoint(spec, mkOp, warmup, measure))
	}
	return out
}

// FormatPoints renders a sweep as the rows of a Figure 7/10-style
// series.
func FormatPoints(points []Point) string {
	s := fmt.Sprintf("%-9s %-8s %-18s %-12s %-10s\n", "protocol", "clients", "throughput(kops/s)", "latency(ms)", "cpu(%)")
	for _, p := range points {
		s += fmt.Sprintf("%-9s %-8d %-18.2f %-12.1f %-10.1f\n",
			p.Protocol, p.Clients, p.ThroughputKops, p.LatencyMs, p.PrimaryCPU*100)
	}
	return s
}
