package bench

import (
	"fmt"
	"io"

	"github.com/xft-consensus/xft/internal/crypto"
)

// asyncVerifyWorkers is the verification-pool width the async-crypto
// experiment models (the acceptance criterion's "VerifyWorkers ≥ 4").
const asyncVerifyWorkers = 4

// AsyncCryptoComparison measures XPaxos common-case throughput at n=3
// on the deterministic simulated WAN with the asynchronous crypto
// pipeline disabled — every signature operation stalls the replica's
// Step loop, the pre-pipeline behavior — versus enabled (the
// default), and returns both points so benchmarks can gate on the
// speedup.
//
// Unlike the paper-reproduction experiments, crypto here is priced
// with CostModelModern: full (undivided) per-operation constants, a
// 4-way verification pool and the batch-verification discount. The
// model's attribution is deliberate and worth being explicit about:
// the simulator has always charged Step-loop crypto at full serial
// cost (a single-core event loop; the pool's parallelism was never
// modeled in-loop — "deliberate for paper fidelity", ROADMAP), and
// this experiment keeps that convention for the synchronous baseline.
// The async leg runs verification on the modeled pool (elapsed =
// cost/workers) and signing on its own unit, overlapping the loop and
// each other. The measured speedup therefore bundles the two wins the
// pipeline delivers *to the event loop* — off-loop overlap plus the
// pool/batch pricing that moving the work off-loop unlocks in this
// model — rather than isolating overlap alone. Virtual-time numbers
// are reproducible bit-for-bit across hosts (sim-based stand-in for
// the noisy live-cluster benchmark, per ROADMAP).
func AsyncCryptoComparison(w io.Writer, sc Scale) (syncPoint, asyncPoint Point) {
	clients := sc.clientCounts()[len(sc.clientCounts())-1]
	cm := crypto.CostModelModern(asyncVerifyWorkers)
	base := Spec{
		Protocol: XPaxos, T: 1, App: NullApp, ReqSize: 1024,
		Clients: clients, Seed: 11, CostModel: &cm,
		// Replicas co-located (single-region placement), no egress cap:
		// with the paper's WAN placement a few hundred closed-loop
		// clients are latency-bound and the crypto units idle; this
		// experiment isolates the CPU/crypto bottleneck the pipeline
		// attacks, so it models the single-datacenter deployment where
		// that bottleneck governs.
		ReplicaRegions: []int{CA, CA, CA},
	}
	syncSpec := base
	syncSpec.SyncCrypto = true
	syncPoint = RunPoint(syncSpec, microOp(base.ReqSize), sc.warmup(), sc.measure())
	asyncPoint = RunPoint(base, microOp(base.ReqSize), sc.warmup(), sc.measure())

	fmt.Fprintf(w, "XPaxos async crypto pipeline, n=3, %d clients, 1/0 benchmark, modern cost model (%d verify workers)\n",
		clients, asyncVerifyWorkers)
	fmt.Fprintf(w, "sync Step-loop crypto:  %7.2f kops/s  latency %6.1f ms\n",
		syncPoint.ThroughputKops, syncPoint.LatencyMs)
	fmt.Fprintf(w, "async crypto pipeline:  %7.2f kops/s  latency %6.1f ms\n",
		asyncPoint.ThroughputKops, asyncPoint.LatencyMs)
	if syncPoint.ThroughputKops > 0 {
		fmt.Fprintf(w, "speedup: %.2fx\n", asyncPoint.ThroughputKops/syncPoint.ThroughputKops)
	}
	return syncPoint, asyncPoint
}
