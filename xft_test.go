package xft

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/xft-consensus/xft/internal/apps/kv"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cluster, err := NewCluster(Options{T: 1, NewApp: func() Application { return kv.NewStore() }})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if cluster.N() != 3 || cluster.T() != 1 {
		t.Fatalf("n=%d t=%d", cluster.N(), cluster.T())
	}
	client := cluster.NewClient()
	rep, err := client.Invoke(kv.PutOp("greeting", []byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 1 || rep[0] != kv.StatusOK {
		t.Fatalf("put reply %v", rep)
	}
	rep, err = client.Invoke(kv.GetOp("greeting"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) < 1 || rep[0] != kv.StatusOK || !bytes.Equal(rep[1:], []byte("hello")) {
		t.Fatalf("get reply %v", rep)
	}
}

func TestPublicAPIMultipleClients(t *testing.T) {
	cluster, err := NewCluster(Options{T: 1, NewApp: func() Application { return kv.NewStore() }})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := cluster.NewClient()
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("c%d-k%d", c, i)
				if _, err := client.Invoke(kv.PutOp(key, []byte("v"))); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPublicAPIInvokeTimed(t *testing.T) {
	cluster, err := NewCluster(Options{T: 1, NewApp: func() Application { return kv.NewStore() }})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	client := cluster.NewClient()
	_, lat, err := client.InvokeTimed(kv.PutOp("x", []byte("1")))
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("latency %v", lat)
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := NewCluster(Options{T: 0, NewApp: func() Application { return kv.NewStore() }}); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := NewCluster(Options{T: 1}); err == nil {
		t.Fatal("missing NewApp accepted")
	}
}

func TestPublicAPIT2(t *testing.T) {
	cluster, err := NewCluster(Options{T: 2, NewApp: func() Application { return kv.NewStore() }})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	client := cluster.NewClient()
	if _, err := client.Invoke(kv.PutOp("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
}
