// Package xft is the public API of this repository: an implementation
// of XFT ("cross fault tolerance") state-machine replication from
// "XFT: Practical Fault Tolerance Beyond Crashes" (OSDI 2016),
// centered on the XPaxos protocol.
//
// An XPaxos cluster runs n = 2t+1 replicas and, outside "anarchy"
// (Definition 2 of the paper), tolerates any combination of at most t
// crash faults, non-crash (Byzantine) machine faults and partitioned
// replicas — the reliability of Paxos/Raft plus protection against
// data corruption, at CFT resource cost.
//
// Quick start:
//
//	cluster, err := xft.NewCluster(xft.Options{T: 1, NewApp: func() xft.Application {
//	    return kv.NewStore()
//	}})
//	client := cluster.NewClient()
//	reply, err := client.Invoke(kv.PutOp("greeting", []byte("hello")))
//
// The common case is pipelined and batched: the primary keeps up to
// Options.PipelineWindow batches in flight concurrently (batch
// formation adapts to load — partial batches ship immediately when the
// pipeline is idle, and fill while it is busy), and signature
// verification of independent messages is scattered across a worker
// pool sized by Options.VerifyWorkers. Set PipelineWindow to 1 for the
// classic lock-step behavior.
//
// The same protocol code also runs under the deterministic WAN
// simulator used by the test-suite and the paper-reproduction
// experiments; see internal/bench and cmd/xft-bench.
package xft

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/xft-consensus/xft/internal/crypto"
	"github.com/xft-consensus/xft/internal/smr"
	"github.com/xft-consensus/xft/internal/xpaxos"
)

// Application is the replicated service interface (re-exported from
// the internal framework).
type Application = smr.Application

// NodeID identifies replicas (0..n−1) and clients.
type NodeID = smr.NodeID

// View numbers XPaxos configurations.
type View = smr.View

// Options configures an in-process XPaxos cluster.
type Options struct {
	// T is the fault threshold; the cluster runs 2T+1 replicas.
	T int
	// NewApp builds one application instance per replica. Instances
	// must be deterministic and start identical.
	NewApp func() Application
	// Delta is the synchrony bound Δ (default 500 ms in-process).
	Delta time.Duration
	// BatchSize is the request batch size (default 20, as in the
	// paper).
	BatchSize int
	// PipelineWindow is how many batches the primary may keep in
	// flight at once (default 32). 1 reproduces the lock-step common
	// case: each batch must commit before the next is proposed.
	PipelineWindow int
	// VerifyWorkers sizes the parallel signature-verification pool:
	// 0 shares a process-wide GOMAXPROCS pool, 1 verifies serially,
	// n > 1 dedicates n workers per replica.
	VerifyWorkers int
	// DisableAsyncCrypto forces signature work back into each
	// replica's event loop. By default signing and verification run
	// asynchronously (the crypto pipeline), so consecutive batches'
	// crypto overlaps and a slow verification cannot delay timers or
	// view changes.
	DisableAsyncCrypto bool
	// EnableFD turns on the fault-detection mechanism (Section 4.4).
	EnableFD bool
	// Seed makes the cluster's keys deterministic (default 1).
	Seed int64
	// OnViewChange, if set, observes completed view changes.
	OnViewChange func(replica NodeID, newView View)
	// OnFaultDetected, if set, observes FD convictions.
	OnFaultDetected func(replica NodeID, culprit NodeID, kind string)
}

// Cluster is a running in-process XPaxos deployment.
type Cluster struct {
	opts     Options
	rt       *smr.LiveRuntime
	suite    crypto.Suite
	n, t     int
	mu       sync.Mutex
	clients  int
	replicas []*xpaxos.Replica
	stopped  bool
}

// NewCluster builds and starts 2T+1 replicas.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.T < 1 {
		return nil, errors.New("xft: T must be at least 1")
	}
	if opts.NewApp == nil {
		return nil, errors.New("xft: NewApp is required")
	}
	if opts.Delta == 0 {
		opts.Delta = 500 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	n := 2*opts.T + 1
	c := &Cluster{opts: opts, n: n, t: opts.T}
	c.suite = crypto.NewEd25519Suite(n+1024, opts.Seed)
	c.rt = smr.NewLiveRuntime()
	for i := 0; i < n; i++ {
		id := smr.NodeID(i)
		cfg := xpaxos.Config{
			N: n, T: opts.T,
			Suite:              crypto.NewMeter(c.suite),
			Delta:              opts.Delta,
			BatchSize:          opts.BatchSize,
			PipelineWindow:     opts.PipelineWindow,
			VerifyWorkers:      opts.VerifyWorkers,
			DisableAsyncCrypto: opts.DisableAsyncCrypto,
			CheckpointInterval: 256,
			EnableFD:           opts.EnableFD,
		}
		if opts.OnViewChange != nil {
			cb := opts.OnViewChange
			cfg.OnViewChange = func(v smr.View, at time.Duration) { cb(id, v) }
		}
		if opts.OnFaultDetected != nil {
			cb := opts.OnFaultDetected
			cfg.OnFaultDetected = func(culprit smr.NodeID, kind string, sn smr.SeqNum) { cb(id, culprit, kind) }
		}
		r := xpaxos.NewReplica(id, cfg, opts.NewApp())
		c.replicas = append(c.replicas, r)
		c.rt.AddNode(id, r)
	}
	c.rt.Start()
	return c, nil
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.stopped {
		c.stopped = true
		c.rt.Stop()
	}
}

// N returns the number of replicas.
func (c *Cluster) N() int { return c.n }

// T returns the fault threshold.
func (c *Cluster) T() int { return c.t }

// Client submits operations to the cluster. Safe for use from one
// goroutine at a time (requests are issued closed-loop, as in the
// paper's benchmarks).
type Client struct {
	cluster *Cluster
	id      smr.NodeID
	mu      sync.Mutex
	done    chan result
}

type result struct {
	rep []byte
	lat time.Duration
}

// NewClient registers a new client with the cluster.
//
// Clients added after Start join the live runtime dynamically; the
// runtime supports that because node registration only races with
// message delivery, which is lock-protected.
func (c *Cluster) NewClient() *Client {
	c.mu.Lock()
	idx := c.clients
	c.clients++
	c.mu.Unlock()
	id := smr.ClientIDBase + smr.NodeID(idx)
	cl := &Client{cluster: c, id: id, done: make(chan result, 1)}
	xc, err := xpaxos.NewClient(id, xpaxos.ClientConfig{
		N: c.n, T: c.t,
		Suite:          crypto.NewMeter(c.suite),
		RequestTimeout: 4 * c.opts.Delta,
		OnCommit: func(op, rep []byte, lat time.Duration) {
			cl.done <- result{rep: rep, lat: lat}
		},
	})
	if err != nil {
		// Unreachable: the only rejected field (Window) is left at its
		// closed-loop default here.
		panic(err)
	}
	c.rt.AddNode(id, xc) // the runtime is started, so the client launches now
	return cl
}

// Invoke submits op and blocks until it commits, returning the reply.
func (cl *Client) Invoke(op []byte) ([]byte, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.cluster.rt.SubmitWait(cl.id, smr.Invoke{Op: op})
	select {
	case r := <-cl.done:
		return r.rep, nil
	case <-time.After(2 * time.Minute):
		return nil, fmt.Errorf("xft: request timed out")
	}
}

// InvokeTimed is Invoke plus the commit latency.
func (cl *Client) InvokeTimed(op []byte) ([]byte, time.Duration, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	start := time.Now()
	cl.cluster.rt.SubmitWait(cl.id, smr.Invoke{Op: op})
	select {
	case r := <-cl.done:
		return r.rep, r.lat, nil
	case <-time.After(2 * time.Minute):
		return nil, time.Since(start), fmt.Errorf("xft: request timed out")
	}
}
