module github.com/xft-consensus/xft

go 1.23
